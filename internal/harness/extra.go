package harness

import (
	"fmt"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/metrics"
	"github.com/ralab/are/internal/pricing"
)

// Additional experiments from the paper's discussion sections: the ELT
// representation trade-off (§III.B) and the real-time pricing scenario
// (§IV: 50k trials must quote in about a second).

func init() {
	register("eltrep", "ELT representation trade-off: direct access vs sorted vs hash vs cuckoo (§III.B)", eltrep)
	register("pricing", "real-time pricing scenario: 50k-trial quote latency (§IV)", pricingExp)
}

func eltrep(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(200_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "eltrep", Title: "engine time and memory by ELT representation",
		Columns: []string{"representation", "measured_s", "lookup_memory_MB", "relative_time"}}
	var base float64
	for _, kind := range []core.LookupKind{core.LookupDirect, core.LookupSorted, core.LookupHash, core.LookupCuckoo, core.LookupCombined} {
		eng, err := core.NewEngine(p, cfg.CatalogSize, kind)
		if err != nil {
			return nil, err
		}
		el, _, err := measure(eng, y, core.Options{Workers: 1, SkipValidation: true})
		if err != nil {
			return nil, err
		}
		if kind == core.LookupDirect {
			base = el.Seconds()
		}
		t.AddRow(kind.String(), seconds(el),
			fmt.Sprintf("%.1f", float64(eng.LookupMemory())/(1<<20)),
			fmt.Sprintf("%.2fx", el.Seconds()/base))
	}
	t.Notes = append(t.Notes,
		"expected shape: direct access is fastest per lookup but needs memory proportional to the catalog;",
		"compact representations trade lookup time for memory (the paper's rationale for direct access tables);",
		"'combined' folds financial terms + the cross-ELT sum into one table per layer at compile time",
		"(one lookup per occurrence instead of |ELT|), bitwise identical — an optimisation beyond the paper")
	return t, nil
}

func pricingExp(cfg Config) (*Table, error) {
	// The paper's real-time scenario: an underwriter re-quotes one
	// contract on a 50k-trial YET while on the phone.
	trials := cfg.scaledTrials(50_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	el, res, err := measure(eng, y, core.Options{Workers: cfg.Workers, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	q, err := pricing.Price(res.YLT(0), pricing.Config{OccLimit: p.Layers[0].LTerms.OccLimit})
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewEPCurve(res.YLT(0))
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "pricing", Title: "real-time pricing of one layer",
		Columns: []string{"quantity", "value"}}
	t.AddRow("trials", fmt.Sprint(trials))
	t.AddRow("analysis wall time", seconds(el)+" s")
	t.AddRow("expected annual loss", fmt.Sprintf("%.0f", q.ExpectedLoss))
	t.AddRow("YLT std dev", fmt.Sprintf("%.0f", q.StdDev))
	t.AddRow("technical premium", fmt.Sprintf("%.0f", q.TechnicalPremium))
	t.AddRow("rate on line", fmt.Sprintf("%.4f", q.RateOnLine))
	if pml, err := curve.PML(100); err == nil {
		t.AddRow("PML (100y)", fmt.Sprintf("%.0f", pml))
	}
	if tv, err := curve.TVaR(0.99); err == nil {
		t.AddRow("TVaR (99%)", fmt.Sprintf("%.0f", tv))
	}
	t.Notes = append(t.Notes,
		"paper claim: 50k-trial aggregate analysis answers in about a second on the optimised GPU,",
		"fast enough to support re-quoting contract terms live during a client call")
	return t, nil
}

func init() {
	register("convergence", "§IV claim: how many trials are enough? bootstrap error of PML/TVaR vs trial count", convergenceExp)
}

func convergenceExp(cfg Config) (*Table, error) {
	// Build one large YLT and bootstrap metric error at sub-sizes.
	trials := cfg.scaledTrials(1_000_000)
	if trials < 1000 {
		trials = 1000
	}
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	_, res, err := measure(eng, y, core.Options{Workers: cfg.Workers, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	ylt := res.YLT(0)

	sizes := []int{}
	for _, s := range []int{1000, 5000, 20000, 50000, 200000, 1000000} {
		n := int(float64(s) * float64(trials) / 1_000_000)
		if n < 100 {
			n = 100
		}
		if n <= len(ylt) {
			sizes = append(sizes, n)
		}
	}
	t := &Table{Name: "convergence", Title: "bootstrap sampling error of risk metrics vs trial count",
		Columns: []string{"paper_trials", "subsample", "PML100_rel_err_%", "TVaR99_rel_err_%"}}
	paperEquiv := []string{"1k", "5k", "20k", "50k", "200k", "1M"}
	pml, err := metrics.Convergence(ylt, sizes, metrics.PMLMetric(100), 40, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tvar, err := metrics.Convergence(ylt, sizes, metrics.TVaRMetric(0.99), 40, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	for i := range pml {
		label := ""
		if i < len(paperEquiv) {
			label = paperEquiv[i]
		}
		t.AddRow(label, fmt.Sprint(pml[i].Trials),
			fmt.Sprintf("%.2f", pml[i].RelErr*100),
			fmt.Sprintf("%.2f", tvar[i].RelErr*100))
	}
	t.Notes = append(t.Notes,
		"Monte Carlo error falls as 1/sqrt(trials); the paper's \"50K trials may be sufficient\"",
		"corresponds to the row where tail-metric error drops to a few percent")
	return t, nil
}
