package harness

import (
	"fmt"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/gpusim"
)

// Figure 3: the parallel (OpenMP-style) engine on a multi-core CPU.
// The measured columns run the goroutine worker pool on this machine; on
// boxes with fewer cores than the sweep the extra workers time-share, so
// the model column (calibrated to the paper's i7-2600 measurements:
// 1.5x/2.2x/2.6x at 2/4/8 cores) carries the paper's shape.

func init() {
	register("fig3a", "parallel engine: cores vs execution time (paper: 1.5x@2, 2.2x@4, 2.6x@8)", fig3a)
	register("fig3b", "parallel engine: total software threads vs execution time (paper: 135s->125s at 256 thr/core)", fig3b)
}

func fig3a(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(1_000_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig3a", Title: "execution time vs number of cores",
		Columns: []string{"cores", "measured_s(go)", "measured_speedup", "model_s(i7)", "model_speedup"}}
	var base float64
	for _, cores := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		el, _, err := measure(eng, y, core.Options{Workers: cores, SkipValidation: true})
		if err != nil {
			return nil, err
		}
		if cores == 1 {
			base = el.Seconds()
		}
		est, err := gpusim.SimulateCPU(gpusim.Corei7_2600(), gpusim.PaperWorkload(), cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(cores), seconds(el),
			fmt.Sprintf("%.2fx", base/el.Seconds()),
			fmt.Sprintf("%.1f", est.Seconds),
			fmt.Sprintf("%.2fx", est.Speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured on GOMAXPROCS=%d; worker counts beyond physical cores time-share", maxProcs()),
		"expected shape: sub-linear speedup saturating well below 8x (memory-bandwidth bound)")
	return t, nil
}

func fig3b(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(1_000_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig3b", Title: "execution time vs total software threads (8 cores)",
		Columns: []string{"threads/core", "total_threads", "measured_s(go)", "model_s(i7)"}}
	for _, tpc := range []int{1, 4, 16, 64, 128, 256, 512, 1024} {
		total := 8 * tpc
		el, _, err := measure(eng, y, core.Options{Workers: total, SkipValidation: true})
		if err != nil {
			return nil, err
		}
		est, err := gpusim.SimulateCPUOversubscribed(gpusim.Corei7_2600(), gpusim.PaperWorkload(), 8, tpc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(tpc), fmt.Sprint(total), seconds(el), fmt.Sprintf("%.1f", est.Seconds))
	}
	t.Notes = append(t.Notes,
		"expected shape: a few percent improvement up to ~256 threads/core, diminishing beyond")
	return t, nil
}
