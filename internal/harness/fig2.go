package harness

import (
	"fmt"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/gpusim"
)

// Figure 2: sequential scaling of the basic algorithm in each of the four
// problem-size parameters (§III.C.1). Each table reports the measured Go
// sequential engine at Config.Scale alongside the calibrated CPU model at
// full paper size; both must scale linearly.

func init() {
	register("fig2a", "sequential runtime vs ELTs per layer (3-15); 1 layer, 1M trials x 1000 events", fig2a)
	register("fig2b", "sequential runtime vs trials (200k-1M); 1 layer, 15 ELTs, 1000 events", fig2b)
	register("fig2c", "sequential runtime vs layers (1-5); 15 ELTs/layer, 1M trials x 1000 events", fig2c)
	register("fig2d", "sequential runtime vs events per trial (800-1200); 1 layer, 15 ELTs, 100k trials", fig2d)
}

func fig2Row(cfg Config, layers, elts, paperTrials, events int) (measured string, model string, trials int, err error) {
	trials = cfg.scaledTrials(paperTrials)
	p, y, err := buildInputs(cfg, layers, elts, trials, events)
	if err != nil {
		return "", "", 0, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return "", "", 0, err
	}
	el, _, err := measure(eng, y, core.Options{Workers: 1, SkipValidation: true})
	if err != nil {
		return "", "", 0, err
	}
	est, err := gpusim.SimulateCPU(gpusim.Corei7_2600(), gpusim.Workload{
		Trials: paperTrials, EventsPerTrial: events, ELTsPerLayer: elts, Layers: layers,
	}, 1)
	if err != nil {
		return "", "", 0, err
	}
	return seconds(el), fmt.Sprintf("%.1f", est.Seconds), trials, nil
}

func fig2a(cfg Config) (*Table, error) {
	t := &Table{Name: "fig2a", Title: "sequential runtime vs average ELTs per layer",
		Columns: []string{"elts/layer", "measured_s(go,scaled)", "model_s(i7,paper-size)"}}
	var trials int
	for _, elts := range []int{3, 6, 9, 12, 15} {
		m, sim, tr, err := fig2Row(cfg, 1, elts, 1_000_000, 1000)
		if err != nil {
			return nil, err
		}
		trials = tr
		t.AddRow(fmt.Sprint(elts), m, sim)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured column uses %d trials (scale %.4g); paper uses 1M", trials, cfg.Scale),
		"expected shape: linear in ELTs per layer")
	return t, nil
}

func fig2b(cfg Config) (*Table, error) {
	t := &Table{Name: "fig2b", Title: "sequential runtime vs number of trials",
		Columns: []string{"paper_trials", "measured_trials", "measured_s(go)", "model_s(i7,paper-size)"}}
	for _, paperTrials := range []int{200_000, 400_000, 600_000, 800_000, 1_000_000} {
		m, sim, tr, err := fig2Row(cfg, 1, 15, paperTrials, 1000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(paperTrials), fmt.Sprint(tr), m, sim)
	}
	t.Notes = append(t.Notes, "expected shape: linear in trials")
	return t, nil
}

func fig2c(cfg Config) (*Table, error) {
	t := &Table{Name: "fig2c", Title: "sequential runtime vs number of layers",
		Columns: []string{"layers", "measured_s(go,scaled)", "model_s(i7,paper-size)"}}
	for layers := 1; layers <= 5; layers++ {
		m, sim, _, err := fig2Row(cfg, layers, 15, 1_000_000, 1000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(layers), m, sim)
	}
	t.Notes = append(t.Notes, "expected shape: linear in layers")
	return t, nil
}

func fig2d(cfg Config) (*Table, error) {
	t := &Table{Name: "fig2d", Title: "sequential runtime vs events per trial",
		Columns: []string{"events/trial", "measured_s(go,scaled)", "model_s(i7,paper-size)"}}
	for _, events := range []int{800, 900, 1000, 1100, 1200} {
		m, sim, _, err := fig2Row(cfg, 1, 15, 100_000, events)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(events), m, sim)
	}
	t.Notes = append(t.Notes, "expected shape: linear in events per trial")
	return t, nil
}
