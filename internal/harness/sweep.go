package harness

import (
	"fmt"
	"time"

	"github.com/ralab/are/internal/core"
)

// The sweep study measures the fused scenario-sweep engine — the
// "price a whole tower of candidate structures in one job" workload:
// K term/share variants of one portfolio evaluated in a single
// streaming pass against K naive re-runs of the pipeline. The fusion
// pays the memory-bound gather once, so on gather-bound
// representations the speedup should approach K.

func init() {
	register("sweep", "fused scenario sweep: one gather pass vs K naive runs", sweepExp)
}

func sweepExp(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(100_000)
	const eltsPerLayer, eventsPerTrial = 15, 1000
	const numK = 8
	p, y, err := buildInputs(cfg, 1, eltsPerLayer, trials, eventsPerTrial)
	if err != nil {
		return nil, err
	}

	// K candidate structures: variant 0 is the base book, the rest walk
	// the attachment/limit tower (the common pricing sweep, which takes
	// the shared-gather fast path).
	variants := make([]core.Variant, numK)
	variants[0] = core.Variant{Name: "base"}
	for i := 1; i < numK; i++ {
		occR, aggR := 50_000*float64(i), 250_000*float64(i)
		variants[i] = core.Variant{
			Name:         fmt.Sprintf("tower-%d", i),
			OccRetention: &occR,
			AggRetention: &aggR,
		}
	}

	kinds := []core.LookupKind{core.LookupDirect, core.LookupSorted, core.LookupCuckoo, core.LookupCombined}
	t := &Table{Name: "sweep",
		Title:   fmt.Sprintf("fused %d-variant sweep vs %d naive runs (single worker)", numK, numK),
		Columns: []string{"lookup", "fused_s", "naive_s", "speedup"}}

	opt := core.Options{Workers: 1, SkipValidation: true}
	for _, kind := range kinds {
		sw, err := core.NewSweepEngine(p, cfg.CatalogSize, kind, variants)
		if err != nil {
			return nil, err
		}
		eng := sw.Base()

		var fused time.Duration
		for rep := 0; rep < measureReps; rep++ {
			start := time.Now()
			if _, err := sw.Run(y, opt); err != nil {
				return nil, err
			}
			if el := time.Since(start); rep == 0 || el < fused {
				fused = el
			}
		}

		// Naive: K full runs of the base engine. (Per-variant engines
		// would also pay K compiles; charging only the runs is the
		// conservative comparison.)
		var naive time.Duration
		for rep := 0; rep < measureReps; rep++ {
			start := time.Now()
			for k := 0; k < numK; k++ {
				if _, err := eng.Run(y, opt); err != nil {
					return nil, err
				}
			}
			if el := time.Since(start); rep == 0 || el < naive {
				naive = el
			}
		}

		t.AddRow(kind.String(), seconds(fused), seconds(naive),
			fmt.Sprintf("%.2fx", float64(naive)/float64(fused)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d variants varying attachment + aggregate retention over %d trials x %d events", numK, trials, eventsPerTrial),
		"fused = one pass, per-variant layer terms fanned out from one gathered loss column;",
		"variant 0 is bitwise identical to the plain single run (core sweep oracle);",
		"'combined' cannot amortise lookups across share-varying variants, so its win is smallest")
	return t, nil
}
