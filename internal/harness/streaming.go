package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/metrics"
)

// Streaming pipeline experiment: the run path of the refactored engine
// — loaded table vs serialised stream, materialising FullYLT sink vs
// bounded-memory online sinks — measured for wall time, materialised
// result size and total heap allocation. The paper's preprocessing
// stage loads the entire ~16 GB Year Event Table before analysis; this
// table shows the same analysis with an O(batch) working set.

func init() {
	register("streaming",
		"streaming pipeline: loaded vs streamed run path, full-YLT vs online sinks (bounded memory)",
		streamingExp)
}

func streamingExp(cfg Config) (*Table, error) {
	const layers, eltsPerLayer, eventsPerTrial = 2, 10, 1000
	trials := cfg.scaledTrials(1_000_000)
	p, y, err := buildInputs(cfg, layers, eltsPerLayer, trials, eventsPerTrial)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := y.WriteTo(&buf); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	opt := core.Options{Workers: cfg.Workers, SkipValidation: true}
	const batch = 1024

	t := &Table{Name: "streaming", Title: "one orchestrator, three run shapes",
		Columns: []string{"source", "sink", "seconds", "resident-result-MB", "alloc-MB"}}

	yltMB := float64(layers*trials*2*8) / (1 << 20)

	// Loaded table, materialising sink: the classic Run.
	sec, alloc, err := measureAlloc(func() error {
		_, err := e.Run(y, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("loaded table", "FullYLT", seconds(sec), fmt.Sprintf("%.2f", yltMB), fmt.Sprintf("%.1f", alloc))

	// Streamed, materialising sink: bitwise identical to Run.
	sec, alloc, err = measureAlloc(func() error {
		_, err := e.RunStream(bytes.NewReader(data), batch, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("stream", "FullYLT", seconds(sec), fmt.Sprintf("%.2f", yltMB), fmt.Sprintf("%.1f", alloc))

	// Streamed, online sinks: no O(layers x trials) allocation at all.
	var sum *metrics.SummarySink
	sec, alloc, err = measureAlloc(func() error {
		src, err := core.NewStreamSource(bytes.NewReader(data), batch)
		if err != nil {
			return err
		}
		sum = metrics.NewSummarySink()
		ep := metrics.NewEPSink(nil)
		_, err = e.RunPipeline(src, core.MultiSink{sum, ep}, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("stream", "Summary+EP (online)", seconds(sec), "~0", fmt.Sprintf("%.1f", alloc))

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials x %d layers; stream batch %d trials; YET %.1f MB serialised",
			trials, layers, batch, float64(len(data))/(1<<20)),
		fmt.Sprintf("online AAL layer 0: %.4g (sketched PML within a few %% of exact)", sum.Summary(0).Mean),
		"streamed working set is O(batch), independent of total trials")
	return t, nil
}

// measureAlloc runs f once, returning wall time and the heap allocated
// during the run in MB (total bytes allocated, the measurable proxy for
// the bounded-memory claim).
func measureAlloc(f func() error) (time.Duration, float64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	el := time.Since(start)
	runtime.ReadMemStats(&after)
	return el, float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20), err
}
