// Package harness regenerates every figure of the paper's evaluation
// (§III) as a printable table: the sequential scaling sweeps (Fig 2), the
// multi-core experiments (Fig 3), the GPU experiments (Figs 4-5), the
// summary comparison and phase breakdown (Fig 6), plus the ELT
// data-structure comparison and the real-time pricing scenario discussed
// in §III.B and §IV.
//
// Each experiment combines two sources:
//
//   - measured wall-clock times of the Go engines on this machine, at a
//     configurable fraction of the paper's 1M-trial workload
//     (Config.Scale), and
//   - the calibrated hardware models of package gpusim at full paper
//     size, which reproduce the multi-core contention and GPU behaviour
//     of the paper's platforms (this repository substitutes models for
//     the i7-2600/Tesla C2075 testbed; see DESIGN.md §4).
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/layer"
	"github.com/ralab/are/internal/yet"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Config controls experiment execution.
type Config struct {
	// Seed drives all synthetic data generation.
	Seed uint64

	// Scale multiplies the paper's trial counts for the measured runs
	// (1.0 = full paper size: 1M trials x 1000 events, ~16 GB of YET).
	// Default 0.01 (10k trials), which preserves per-trial behaviour.
	Scale float64

	// CatalogSize is the stochastic catalog size behind the direct
	// access tables. The paper's sizing example uses 2M events;
	// default 1M to keep the packed tables comfortable in memory.
	CatalogSize int

	// RecordsPerELT is the non-zero loss count per ELT (paper: 10k-30k).
	RecordsPerELT int

	// Workers caps measured-run parallelism; 0 = GOMAXPROCS.
	Workers int
}

func (c *Config) setDefaults() {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.CatalogSize <= 0 {
		c.CatalogSize = 1_000_000
	}
	if c.RecordsPerELT <= 0 {
		c.RecordsPerELT = 20_000
	}
}

// scaledTrials converts a paper-size trial count through Config.Scale,
// with a floor that keeps measurements meaningful.
func (c Config) scaledTrials(paperTrials int) int {
	n := int(float64(paperTrials) * c.Scale)
	if n < 16 {
		n = 16
	}
	return n
}

// Experiment is a named, runnable reproduction of one paper figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(name, title string, run func(Config) (*Table, error)) {
	registry[name] = Experiment{Name: name, Title: title, Run: run}
}

// Names lists registered experiments in stable order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the named experiment.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Run executes the named experiment.
func Run(name string, cfg Config) (*Table, error) {
	cfg.setDefaults()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
	}
	return e.Run(cfg)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, name := range Names() {
		tab, err := Run(name, cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", name, err)
		}
		tab.Fprint(w)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared measurement helpers.

// buildInputs constructs a synthetic portfolio and YET of the given shape.
func buildInputs(cfg Config, layers, eltsPerLayer, trials, eventsPerTrial int) (*layer.Portfolio, *yet.Table, error) {
	p, err := layer.GeneratePortfolio(layer.GenConfig{
		Seed:          cfg.Seed,
		NumLayers:     layers,
		ELTsPerLayer:  eltsPerLayer,
		ELTPool:       layers * eltsPerLayer, // distinct ELTs, like the paper's sizing
		RecordsPerELT: cfg.RecordsPerELT,
		CatalogSize:   cfg.CatalogSize,
	})
	if err != nil {
		return nil, nil, err
	}
	y, err := yet.Generate(yet.UniformSource(cfg.CatalogSize), yet.Config{
		Seed:        cfg.Seed + 1,
		Trials:      trials,
		FixedEvents: eventsPerTrial,
	})
	if err != nil {
		return nil, nil, err
	}
	return p, y, nil
}

// measure runs the engine and returns elapsed wall time and result. The
// run is repeated measureReps times and the minimum is reported, damping
// scheduler and GC noise on small scaled inputs.
func measure(e *core.Engine, y *yet.Table, opt core.Options) (time.Duration, *core.Result, error) {
	var best time.Duration
	var res *core.Result
	for i := 0; i < measureReps; i++ {
		start := time.Now()
		r, err := e.Run(y, opt)
		el := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		if res == nil || el < best {
			best, res = el, r
		}
	}
	return best, res, nil
}

// measureReps is the best-of-N repetition count used by measure.
const measureReps = 3

func seconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

func maxProcs() int { return runtime.GOMAXPROCS(0) }

// WriteCSV renders the table as CSV (header row then data rows); notes
// are emitted as comment-style trailing rows prefixed with "#".
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		rec := make([]string, len(t.Columns))
		rec[0] = "# " + n
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
