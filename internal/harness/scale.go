package harness

import (
	"fmt"

	"github.com/ralab/are/internal/gpusim"
)

// §IV capacity projections: whole-book roll-ups and the multi-GPU
// requirement for 1M-trial portfolio analysis.

func init() {
	register("scale", "§IV capacity projections: whole-book roll-ups and multi-GPU requirement", scaleExp)
}

func scaleExp(cfg Config) (*Table, error) {
	t := &Table{Name: "scale", Title: "projected wall time for whole-portfolio analysis (model)",
		Columns: []string{"scenario", "platform", "hours"}}
	cpu := gpusim.Corei7_2600()
	gpu := gpusim.TeslaC2075()
	const catalog = 2_000_000

	weekly := gpusim.PortfolioScenario{Contracts: 5000, Trials: 50_000}
	if h, err := gpusim.HoursOnCPU(cpu, weekly, 1); err == nil {
		t.AddRow("5000 contracts x 50k trials", "CPU sequential", fmt.Sprintf("%.1f", h))
	}
	if h, err := gpusim.HoursOnCPU(cpu, weekly, 8); err == nil {
		t.AddRow("5000 contracts x 50k trials", "CPU 8 cores", fmt.Sprintf("%.1f", h))
	}
	if h, err := gpusim.HoursOnGPUs(gpu, weekly, 1, catalog); err == nil {
		t.AddRow("5000 contracts x 50k trials", "1 GPU (optimised)", fmt.Sprintf("%.1f", h))
	}

	big := gpusim.PortfolioScenario{Contracts: 5000, Trials: 1_000_000}
	for _, n := range []int{1, 2, 4, 8} {
		h, err := gpusim.HoursOnGPUs(gpu, big, n, catalog)
		if err != nil {
			return nil, err
		}
		t.AddRow("5000 contracts x 1M trials", fmt.Sprintf("%d GPU(s)", n), fmt.Sprintf("%.1f", h))
	}
	if eff, err := gpusim.SpeedupEfficiency(gpu, gpusim.Workload{
		Trials: 1_000_000, EventsPerTrial: 1000, ELTsPerLayer: 15, Layers: 5000,
	}, gpusim.Kernel{ThreadsPerBlock: 64, ChunkSize: 4}, 8, catalog); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("8-GPU parallel efficiency: %.0f%%", eff*100))
	}
	t.Notes = append(t.Notes,
		"paper §IV: 50k-trial book roll-ups support weekly portfolio updates;",
		"1M-trial roll-ups \"would likely require a multi-GPU hardware platform\"")
	return t, nil
}
