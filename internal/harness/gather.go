package harness

import (
	"fmt"

	"github.com/ralab/are/internal/core"
)

// The gather study extends the paper's §III.B lookup comparison to the
// engine's columnar batch-gather kernels: every kernel (basic, chunked,
// profiled) is timed against every ELT representation and reported as
// nanoseconds per occurrence per ELT lookup — the unit the paper's
// memory-bound argument is made in.

func init() {
	register("gather", "batch-gather kernels: ns/occurrence by kernel x ELT representation", gatherExp)
}

func gatherExp(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(100_000)
	const eltsPerLayer, eventsPerTrial = 15, 1000
	p, y, err := buildInputs(cfg, 1, eltsPerLayer, trials, eventsPerTrial)
	if err != nil {
		return nil, err
	}
	occ := float64(y.NumOccurrences())

	kinds := []core.LookupKind{core.LookupDirect, core.LookupSorted, core.LookupHash, core.LookupCuckoo, core.LookupCombined}
	kernels := []struct {
		name string
		opt  core.Options
	}{
		{"basic", core.Options{}},
		{"chunked", core.Options{ChunkSize: 8}},
		{"profiled", core.Options{Profile: true}},
	}

	cols := []string{"kernel"}
	for _, k := range kinds {
		cols = append(cols, k.String()+"_ns/occ")
	}
	t := &Table{Name: "gather", Title: "columnar batch-gather kernels: ns per occurrence",
		Columns: cols}

	for _, kn := range kernels {
		row := []string{kn.name}
		for _, kind := range kinds {
			eng, err := core.NewEngine(p, cfg.CatalogSize, kind)
			if err != nil {
				return nil, err
			}
			opt := kn.opt
			opt.Workers = 1
			opt.Lookup = kind
			opt.SkipValidation = true
			el, _, err := measure(eng, y, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", float64(el.Nanoseconds())/occ))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"each cell: single-worker wall time / total occurrences; lower is better;",
		"every (kernel, representation) pair is bitwise identical to the reference oracle (core tests);",
		"'combined' performs one lookup per occurrence regardless of ELT count, so its ns/occ",
		fmt.Sprintf("is roughly the direct column divided by the %d ELTs of this layer", eltsPerLayer))
	return t, nil
}
