package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps measured runs fast: ~16-200 trials, small catalog.
func tinyConfig() Config {
	return Config{
		Seed:          1,
		Scale:         0.0002,
		CatalogSize:   100_000,
		RecordsPerELT: 2_000,
	}
}

func TestNamesCoverAllFigures(t *testing.T) {
	want := []string{"convergence", "eltrep", "fig2a", "fig2b", "fig2c", "fig2d",
		"fig3a", "fig3b", "fig4", "fig5a", "fig5b", "fig6a", "fig6b", "gather", "pricing", "scale", "streaming", "sweep"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestGet(t *testing.T) {
	e, ok := Get("fig4")
	if !ok || e.Name != "fig4" || e.Title == "" {
		t.Fatalf("Get(fig4) = %+v, %v", e, ok)
	}
	if _, ok := Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
}

// Every experiment must run at tiny scale and produce a well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	cfg := tinyConfig()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tab, err := Run(name, cfg)
			if err != nil {
				t.Fatalf("Run(%s): %v", name, err)
			}
			if tab.Name != name {
				t.Errorf("table name %q", tab.Name)
			}
			if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("empty table: %+v", tab)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			out := buf.String()
			if !strings.Contains(out, name) || !strings.Contains(out, tab.Columns[0]) {
				t.Errorf("rendered output missing header:\n%s", out)
			}
		})
	}
}

func TestScaledTrialsFloor(t *testing.T) {
	cfg := Config{Scale: 1e-9}
	cfg.setDefaults()
	if got := cfg.scaledTrials(1_000_000); got != 16 {
		t.Fatalf("scaledTrials floor = %d", got)
	}
	cfg.Scale = 0.5
	if got := cfg.scaledTrials(1_000_000); got != 500_000 {
		t.Fatalf("scaledTrials = %d", got)
	}
}

func TestRunAllWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is covered per-experiment above")
	}
	var buf bytes.Buffer
	if err := RunAll(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		if !strings.Contains(buf.String(), "== "+name) {
			t.Errorf("RunAll output missing %s", name)
		}
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tab := &Table{Name: "x", Title: "t", Columns: []string{"a", "longcol"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}, Notes: []string{"n1"}}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "note: n1") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header, cols, sep, 2 rows, note
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}
