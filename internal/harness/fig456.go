package harness

import (
	"fmt"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/gpusim"
)

// Figures 4-5: the GPU kernels on the Tesla C2075 model (this machine has
// no CUDA device; DESIGN.md §4 documents the substitution). Figure 6:
// summary comparison and phase breakdown, combining measured Go engines
// with the device models.

func init() {
	register("fig4", "GPU basic kernel: threads per CUDA block vs time (paper: best ~256)", fig4)
	register("fig5a", "GPU optimised kernel: chunk size vs time (paper: 38.47s->22.72s at chunk 4; flat to 12; cliff beyond)", fig5a)
	register("fig5b", "GPU optimised kernel: threads per block vs time at chunk 4 (paper: <=192 threads, small gains)", fig5b)
	register("fig6a", "summary: total time per implementation (paper: GPU basic 3.2x, optimised 5.4x)", fig6a)
	register("fig6b", "phase breakdown: fetch / ELT lookup / financial / layer terms (paper: ~78% lookup)", fig6b)
}

func fig4(cfg Config) (*Table, error) {
	d, w := gpusim.TeslaC2075(), gpusim.PaperWorkload()
	t := &Table{Name: "fig4", Title: "basic kernel: threads per block vs execution time (model)",
		Columns: []string{"threads/block", "model_s", "active_warps/SM", "blocks/SM"}}
	for _, b := range []int{128, 192, 256, 320, 384, 448, 512, 576, 640} {
		e, err := gpusim.SimulateGPU(d, w, gpusim.Kernel{ThreadsPerBlock: b})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprintf("%.2f", e.Seconds), fmt.Sprint(e.ActiveWarps), fmt.Sprint(e.BlocksPerSM))
	}
	t.Notes = append(t.Notes,
		"expected shape: 128 threads/block under-occupies; best at 256; flat/diminishing beyond")
	return t, nil
}

func fig5a(cfg Config) (*Table, error) {
	d, w := gpusim.TeslaC2075(), gpusim.PaperWorkload()
	t := &Table{Name: "fig5a", Title: "optimised kernel: chunk size vs execution time (model, 64 threads/block)",
		Columns: []string{"chunk", "model_s", "spill_frac", "active_warps/SM", "measured_go_s(chunked,scaled)"}}

	// The Go chunked engine is also measured, at scale, to show the
	// algorithmic variant is implemented end to end (its cache behaviour
	// differs from GPU shared memory, so the model carries the shape).
	trials := cfg.scaledTrials(200_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	for _, c := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24} {
		e, err := gpusim.SimulateGPU(d, w, gpusim.Kernel{ThreadsPerBlock: 64, ChunkSize: c})
		if err != nil {
			return nil, err
		}
		el, _, err := measure(eng, y, core.Options{Workers: 1, ChunkSize: c, SkipValidation: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(c), fmt.Sprintf("%.2f", e.Seconds),
			fmt.Sprintf("%.2f", e.SpillFraction), fmt.Sprint(e.ActiveWarps), seconds(el))
	}
	t.Notes = append(t.Notes,
		"expected shape: big gain by chunk 4, flat plateau to 12, rapid deterioration once shared memory spills")
	return t, nil
}

func fig5b(cfg Config) (*Table, error) {
	d, w := gpusim.TeslaC2075(), gpusim.PaperWorkload()
	t := &Table{Name: "fig5b", Title: "optimised kernel: threads per block vs execution time at chunk 4 (model)",
		Columns: []string{"threads/block", "model_s", "active_warps/SM"}}
	maxB := gpusim.MaxThreadsForChunk(d, 4)
	for b := 32; b <= maxB; b += 32 {
		e, err := gpusim.SimulateGPU(d, w, gpusim.Kernel{ThreadsPerBlock: b, ChunkSize: 4})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprintf("%.2f", e.Seconds), fmt.Sprint(e.ActiveWarps))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("maximum supported threads/block at chunk 4 is %d (shared-memory capacity; paper: 192)", maxB),
		"expected shape: small, insignificant variation across the sweep")
	return t, nil
}

func fig6a(cfg Config) (*Table, error) {
	t := &Table{Name: "fig6a", Title: "total execution time by implementation",
		Columns: []string{"implementation", "time_s", "speedup_vs_sequential", "source"}}

	// Measured Go engines at scale.
	trials := cfg.scaledTrials(1_000_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	seq, _, err := measure(eng, y, core.Options{Workers: 1, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	par, _, err := measure(eng, y, core.Options{Workers: cfg.Workers, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	chk, _, err := measure(eng, y, core.Options{Workers: cfg.Workers, ChunkSize: 4, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("go sequential", seconds(seq), "1.00x", fmt.Sprintf("measured, %d trials", trials))
	t.AddRow("go parallel", seconds(par), fmt.Sprintf("%.2fx", seq.Seconds()/par.Seconds()),
		fmt.Sprintf("measured, %d workers", maxProcs()))
	t.AddRow("go parallel+chunked", seconds(chk), fmt.Sprintf("%.2fx", seq.Seconds()/chk.Seconds()), "measured")
	t.Notes = append(t.Notes,
		"CPU chunking adding overhead rather than speedup matches the paper (§III.C.1:",
		"\"including the chunking method described later for GPUs ... not successful ... on our multi-core CPU\")")

	// Modelled paper platforms at full size.
	w := gpusim.PaperWorkload()
	cpu1, _ := gpusim.SimulateCPU(gpusim.Corei7_2600(), w, 1)
	cpu8, _ := gpusim.SimulateCPU(gpusim.Corei7_2600(), w, 8)
	basic, _ := gpusim.SimulateGPU(gpusim.TeslaC2075(), w, gpusim.Kernel{ThreadsPerBlock: 256})
	opt, _ := gpusim.SimulateGPU(gpusim.TeslaC2075(), w, gpusim.Kernel{ThreadsPerBlock: 64, ChunkSize: 4})
	t.AddRow("C++ sequential (i7-2600)", fmt.Sprintf("%.1f", cpu1.Seconds), "1.00x", "model, 1M trials")
	t.AddRow("OpenMP 8 threads (i7-2600)", fmt.Sprintf("%.1f", cpu8.Seconds),
		fmt.Sprintf("%.2fx", cpu1.Seconds/cpu8.Seconds), "model (paper: 2.6x)")
	t.AddRow("CUDA basic (C2075)", fmt.Sprintf("%.1f", basic.Seconds),
		fmt.Sprintf("%.2fx", cpu1.Seconds/basic.Seconds), "model (paper: 3.2x, 38.47s)")
	t.AddRow("CUDA optimised (C2075)", fmt.Sprintf("%.1f", opt.Seconds),
		fmt.Sprintf("%.2fx", cpu1.Seconds/opt.Seconds), "model (paper: 5.4x, 22.72s)")
	return t, nil
}

func fig6b(cfg Config) (*Table, error) {
	trials := cfg.scaledTrials(200_000)
	p, y, err := buildInputs(cfg, 1, 15, trials, 1000)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p, cfg.CatalogSize, core.LookupDirect)
	if err != nil {
		return nil, err
	}
	_, res, err := measure(eng, y, core.Options{Workers: 1, Profile: true, SkipValidation: true})
	if err != nil {
		return nil, err
	}
	pct := res.Phases.Percentages()
	t := &Table{Name: "fig6b", Title: "share of execution time by phase",
		Columns: []string{"phase", "measured_go_%", "model_i7_%", "paper_%"}}
	cpu, err := gpusim.SimulateCPU(gpusim.Corei7_2600(), gpusim.PaperWorkload(), 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("event fetch", fmt.Sprintf("%.1f", pct[0]), fmt.Sprintf("%.1f", cpu.FetchShare*100), "~4")
	t.AddRow("ELT lookup (direct access)", fmt.Sprintf("%.1f", pct[1]), fmt.Sprintf("%.1f", cpu.LookupShare*100), "78")
	t.AddRow("financial terms", fmt.Sprintf("%.1f", pct[2]), fmt.Sprintf("%.1f", cpu.IntermediateShare*100), "~12")
	t.AddRow("layer terms", fmt.Sprintf("%.1f", pct[3]), fmt.Sprintf("%.1f", cpu.ComputeShare*100), "~6")
	t.Notes = append(t.Notes,
		"expected shape: ELT lookup dominates (the analysis is memory-access bound)",
		"paper column: 78% lookup reported in §IV; remaining split approximate from Fig 6b")
	return t, nil
}
