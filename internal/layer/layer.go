// Package layer implements reinsurance layers and their terms (paper
// §II.A.3 and Table I).
//
// A layer covers a set of Event Loss Tables under four layer terms:
//
//	TOccR  occurrence retention — deductible per individual occurrence
//	TOccL  occurrence limit     — cover per occurrence in excess of TOccR
//	TAggR  aggregate retention  — deductible on the annual cumulative loss
//	TAggL  aggregate limit      — cover on the annual cumulative loss
//
// The occurrence pair expresses Cat XL / Per-Occurrence XL treaties; the
// aggregate pair expresses Aggregate XL (stop-loss) treaties; setting both
// expresses the combined contracts the paper calls common.
package layer

import (
	"errors"
	"fmt"
	"math"

	"github.com/ralab/are/internal/elt"
	"github.com/ralab/are/internal/financial"
	"github.com/ralab/are/internal/rng"
	"github.com/ralab/are/internal/stats"
)

// Unlimited is a convenience alias for "no limit".
var Unlimited = math.Inf(1)

// Terms is the layer-terms tuple T = (TOccR, TOccL, TAggR, TAggL).
type Terms struct {
	OccRetention float64 // TOccR
	OccLimit     float64 // TOccL
	AggRetention float64 // TAggR
	AggLimit     float64 // TAggL
}

// PassThrough returns terms that leave losses untouched.
func PassThrough() Terms {
	return Terms{OccRetention: 0, OccLimit: Unlimited, AggRetention: 0, AggLimit: Unlimited}
}

// Validation errors.
var (
	ErrBadTerm = errors.New("layer: retentions must be finite and >= 0; limits must be > 0 (may be +Inf)")
	ErrNoELTs  = errors.New("layer: must cover at least one ELT")
)

// Validate reports whether the terms are well formed.
func (t Terms) Validate() error {
	for _, r := range []float64{t.OccRetention, t.AggRetention} {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return ErrBadTerm
		}
	}
	for _, l := range []float64{t.OccLimit, t.AggLimit} {
		if !(l > 0) || math.IsNaN(l) {
			return ErrBadTerm
		}
	}
	return nil
}

// ApplyOcc applies the occurrence terms to a single occurrence loss:
// min(max(l − TOccR, 0), TOccL). This is line 11 of the paper's algorithm.
func (t Terms) ApplyOcc(l float64) float64 {
	l -= t.OccRetention
	if l <= 0 {
		return 0
	}
	if l > t.OccLimit {
		l = t.OccLimit
	}
	return l
}

// ApplyAgg applies the aggregate terms to a cumulative loss:
// min(max(sum − TAggR, 0), TAggL). This is line 15 of the paper's
// algorithm; it is applied to the running sum, so a trial's payout depends
// on the order of prior events — the Stop-Loss behaviour.
func (t Terms) ApplyAgg(sum float64) float64 {
	sum -= t.AggRetention
	if sum <= 0 {
		return 0
	}
	if sum > t.AggLimit {
		sum = t.AggLimit
	}
	return sum
}

// Layer is one contract: a set of ELTs under layer terms.
type Layer struct {
	ID     uint32
	Name   string
	ELTs   []*elt.Table
	LTerms Terms
}

// New builds and validates a layer.
func New(id uint32, name string, tables []*elt.Table, terms Terms) (*Layer, error) {
	if len(tables) == 0 {
		return nil, ErrNoELTs
	}
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("layer %d: nil ELT", id)
		}
	}
	if err := terms.Validate(); err != nil {
		return nil, fmt.Errorf("layer %d: %w", id, err)
	}
	return &Layer{ID: id, Name: name, ELTs: tables, LTerms: terms}, nil
}

// Portfolio is the book of layers a reinsurer analyses together.
type Portfolio struct {
	Layers []*Layer
}

// TotalELTs returns the summed ELT count across layers (a layer's cost
// driver in the engine).
func (p *Portfolio) TotalELTs() int {
	var n int
	for _, l := range p.Layers {
		n += len(l.ELTs)
	}
	return n
}

// GenConfig controls synthetic portfolio construction for experiments: a
// pool of synthetic ELTs shared by layers that each cover ELTsPerLayer of
// them — matching the paper's "typical layer covers approximately 3 to 30
// individual ELTs".
type GenConfig struct {
	Seed          uint64
	NumLayers     int
	ELTsPerLayer  int
	ELTPool       int // distinct ELTs to generate; default NumLayers*ELTsPerLayer capped sensibly
	RecordsPerELT int
	CatalogSize   int
	MeanLoss      float64

	// MeanEventsPerTrial is the YET trial length the portfolio will be
	// analysed against; the default layer terms are scaled to the
	// annual loss flow it implies so generated layers attach in the
	// tail rather than saturating every year. Default 1000 (the
	// paper's typical trial).
	MeanEventsPerTrial float64

	// Explicit layer terms; zero values yield representative defaults
	// scaled to the expected loss flow.
	OccRetention, OccLimit float64
	AggRetention, AggLimit float64

	// Sigma, when positive, makes every generated ELT a sampled table
	// (secondary uncertainty, §IV): per-record lognormal sigmas drawn
	// uniformly from [0.5, 1.5]·Sigma. Zero keeps the classic mean-only
	// tables, byte-identical to pre-sigma generation.
	Sigma float64
}

// GeneratePortfolio builds a synthetic portfolio (ELT pool + layers),
// deterministic in cfg.Seed.
func GeneratePortfolio(cfg GenConfig) (*Portfolio, error) {
	if cfg.NumLayers <= 0 || cfg.ELTsPerLayer <= 0 {
		return nil, errors.New("layer: NumLayers and ELTsPerLayer must be positive")
	}
	if cfg.CatalogSize <= 0 || cfg.RecordsPerELT <= 0 {
		return nil, errors.New("layer: CatalogSize and RecordsPerELT must be positive")
	}
	if cfg.MeanLoss <= 0 {
		cfg.MeanLoss = 250000
	}
	pool := cfg.ELTPool
	if pool <= 0 {
		pool = cfg.NumLayers * cfg.ELTsPerLayer
		if pool > 4*cfg.ELTsPerLayer && cfg.NumLayers > 4 {
			pool = 4 * cfg.ELTsPerLayer // layers share ELTs, as books do
		}
	}
	if pool < cfg.ELTsPerLayer {
		pool = cfg.ELTsPerLayer
	}
	r := rng.At(cfg.Seed, 0x1A7E6)

	tables := make([]*elt.Table, pool)
	for i := range tables {
		// Vary FX and participation across ELTs so financial terms do
		// real work in tests and experiments.
		terms := financial.Terms{
			FX:             []float64{1, 1, 1, 0.74, 1.09, 1.31}[r.Intn(6)],
			EventRetention: cfg.MeanLoss * r.Range(0, 0.1),
			EventLimit:     cfg.MeanLoss * r.Range(50, 500),
			Participation:  r.Range(0.25, 1.0),
		}
		t, err := elt.Generate(uint32(i), elt.GenConfig{
			Seed:        cfg.Seed,
			NumRecords:  cfg.RecordsPerELT,
			CatalogSize: cfg.CatalogSize,
			MeanLoss:    cfg.MeanLoss,
			Terms:       terms,
			Sigma:       cfg.Sigma,
		})
		if err != nil {
			return nil, fmt.Errorf("layer: generating ELT %d: %w", i, err)
		}
		tables[i] = t
	}

	// Scale default terms to the expected loss flow: the mean combined
	// loss of one occurrence across the layer's ELTs, and the implied
	// annual total, so occurrence terms cut the bulk but keep the tail
	// and aggregate terms bind only in bad years.
	meanEvents := cfg.MeanEventsPerTrial
	if meanEvents <= 0 {
		meanEvents = 1000
	}
	hitRate := float64(cfg.RecordsPerELT) / float64(cfg.CatalogSize)
	occMean := cfg.MeanLoss * hitRate * float64(cfg.ELTsPerLayer) * 0.625 // mean participation
	annMean := occMean * meanEvents

	p := &Portfolio{Layers: make([]*Layer, cfg.NumLayers)}
	for i := range p.Layers {
		chosen := make([]*elt.Table, cfg.ELTsPerLayer)
		perm := r.Perm(pool)
		for j := 0; j < cfg.ELTsPerLayer; j++ {
			chosen[j] = tables[perm[j]]
		}
		terms := Terms{
			OccRetention: pick(cfg.OccRetention, occMean*stats.LogNormalMeanCV(r, 3, 0.4)),
			OccLimit:     pick(cfg.OccLimit, occMean*stats.LogNormalMeanCV(r, 60, 0.4)),
			AggRetention: pick(cfg.AggRetention, annMean*stats.LogNormalMeanCV(r, 0.10, 0.4)),
			AggLimit:     pick(cfg.AggLimit, annMean*stats.LogNormalMeanCV(r, 2.0, 0.4)),
		}
		l, err := New(uint32(i), fmt.Sprintf("layer-%d", i), chosen, terms)
		if err != nil {
			return nil, err
		}
		p.Layers[i] = l
	}
	return p, nil
}

func pick(v, def float64) float64 {
	if v != 0 {
		return v
	}
	return def
}
