package layer

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/ralab/are/internal/elt"
)

func mustELT(t *testing.T, id uint32) *elt.Table {
	t.Helper()
	tbl, err := elt.Generate(id, elt.GenConfig{Seed: 1, NumRecords: 100, CatalogSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// Table I semantics: occurrence terms.
func TestApplyOccTableI(t *testing.T) {
	terms := Terms{OccRetention: 100, OccLimit: 500, AggRetention: 0, AggLimit: Unlimited}
	cases := []struct{ in, want float64 }{
		{0, 0},     // no loss
		{50, 0},    // below retention: insured retains all
		{100, 0},   // exactly retention
		{300, 200}, // in layer: excess over retention
		{600, 500}, // at limit
		{5000, 500},
	}
	for _, c := range cases {
		if got := terms.ApplyOcc(c.in); got != c.want {
			t.Errorf("ApplyOcc(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Table I semantics: aggregate terms on the annual cumulative loss.
func TestApplyAggTableI(t *testing.T) {
	terms := Terms{OccRetention: 0, OccLimit: Unlimited, AggRetention: 1000, AggLimit: 2000}
	cases := []struct{ in, want float64 }{
		{0, 0}, {500, 0}, {1000, 0}, {1500, 500}, {3000, 2000}, {99999, 2000},
	}
	for _, c := range cases {
		if got := terms.ApplyAgg(c.in); got != c.want {
			t.Errorf("ApplyAgg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPassThrough(t *testing.T) {
	pt := PassThrough()
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, 1e12} {
		if pt.ApplyOcc(v) != v || pt.ApplyAgg(v) != v {
			t.Fatalf("pass-through altered %v", v)
		}
	}
}

func TestTermsValidate(t *testing.T) {
	bad := []Terms{
		{OccRetention: -1, OccLimit: 1, AggLimit: 1},
		{OccRetention: math.NaN(), OccLimit: 1, AggLimit: 1},
		{OccRetention: math.Inf(1), OccLimit: 1, AggLimit: 1},
		{OccLimit: 0, AggLimit: 1},
		{OccLimit: math.NaN(), AggLimit: 1},
		{OccLimit: 1, AggRetention: -2, AggLimit: 1},
		{OccLimit: 1, AggLimit: 0},
	}
	for i, terms := range bad {
		if err := terms.Validate(); !errors.Is(err, ErrBadTerm) {
			t.Errorf("case %d: Validate() = %v, want ErrBadTerm", i, err)
		}
	}
	good := Terms{OccRetention: 0, OccLimit: Unlimited, AggRetention: 5, AggLimit: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good terms rejected: %v", err)
	}
}

func TestNewLayer(t *testing.T) {
	e1, e2 := mustELT(t, 1), mustELT(t, 2)
	l, err := New(9, "cat-xl-9", []*elt.Table{e1, e2}, PassThrough())
	if err != nil {
		t.Fatal(err)
	}
	if l.ID != 9 || l.Name != "cat-xl-9" || len(l.ELTs) != 2 {
		t.Fatalf("layer fields wrong: %+v", l)
	}
}

func TestNewLayerErrors(t *testing.T) {
	if _, err := New(1, "x", nil, PassThrough()); !errors.Is(err, ErrNoELTs) {
		t.Errorf("no ELTs: %v", err)
	}
	if _, err := New(1, "x", []*elt.Table{nil}, PassThrough()); err == nil {
		t.Error("nil ELT accepted")
	}
	e1 := mustELT(t, 1)
	if _, err := New(1, "x", []*elt.Table{e1}, Terms{OccLimit: -1, AggLimit: 1}); err == nil {
		t.Error("bad terms accepted")
	}
}

func TestGeneratePortfolio(t *testing.T) {
	p, err := GeneratePortfolio(GenConfig{
		Seed: 3, NumLayers: 5, ELTsPerLayer: 4,
		RecordsPerELT: 200, CatalogSize: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers) != 5 {
		t.Fatalf("layers = %d", len(p.Layers))
	}
	if p.TotalELTs() != 20 {
		t.Fatalf("TotalELTs = %d", p.TotalELTs())
	}
	for _, l := range p.Layers {
		if len(l.ELTs) != 4 {
			t.Fatalf("layer %d covers %d ELTs", l.ID, len(l.ELTs))
		}
		if err := l.LTerms.Validate(); err != nil {
			t.Fatalf("layer %d terms invalid: %v", l.ID, err)
		}
		seen := map[*elt.Table]bool{}
		for _, e := range l.ELTs {
			if seen[e] {
				t.Fatalf("layer %d references the same ELT twice", l.ID)
			}
			seen[e] = true
			if err := e.Terms.Validate(); err != nil {
				t.Fatalf("ELT %d terms invalid: %v", e.ID, err)
			}
		}
	}
}

func TestGeneratePortfolioDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 4, NumLayers: 3, ELTsPerLayer: 3, RecordsPerELT: 100, CatalogSize: 2000}
	a, err := GeneratePortfolio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePortfolio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Layers {
		if a.Layers[i].LTerms != b.Layers[i].LTerms {
			t.Fatalf("layer %d terms differ", i)
		}
		for j := range a.Layers[i].ELTs {
			ar, br := a.Layers[i].ELTs[j].Records(), b.Layers[i].ELTs[j].Records()
			if len(ar) != len(br) {
				t.Fatalf("layer %d ELT %d sizes differ", i, j)
			}
			for k := range ar {
				if ar[k] != br[k] {
					t.Fatalf("layer %d ELT %d record %d differs", i, j, k)
				}
			}
		}
	}
}

func TestGeneratePortfolioErrors(t *testing.T) {
	if _, err := GeneratePortfolio(GenConfig{NumLayers: 0, ELTsPerLayer: 1, RecordsPerELT: 1, CatalogSize: 10}); err == nil {
		t.Error("zero layers accepted")
	}
	if _, err := GeneratePortfolio(GenConfig{NumLayers: 1, ELTsPerLayer: 1, RecordsPerELT: 0, CatalogSize: 10}); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := GeneratePortfolio(GenConfig{NumLayers: 1, ELTsPerLayer: 1, RecordsPerELT: 100, CatalogSize: 10}); err == nil {
		t.Error("records > catalog accepted")
	}
}

func TestGeneratePortfolioFixedTerms(t *testing.T) {
	p, err := GeneratePortfolio(GenConfig{
		Seed: 5, NumLayers: 2, ELTsPerLayer: 2,
		RecordsPerELT: 50, CatalogSize: 1000,
		OccRetention: 111, OccLimit: 222, AggRetention: 333, AggLimit: 444,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Layers {
		want := Terms{OccRetention: 111, OccLimit: 222, AggRetention: 333, AggLimit: 444}
		if l.LTerms != want {
			t.Fatalf("layer %d terms = %+v", l.ID, l.LTerms)
		}
	}
}

// Properties of the term operators, valid for any non-negative input.
func TestQuickOccAggProperties(t *testing.T) {
	terms := Terms{OccRetention: 50, OccLimit: 1000, AggRetention: 200, AggLimit: 5000}
	f := func(raw float64) bool {
		x := math.Abs(raw)
		occ := terms.ApplyOcc(x)
		agg := terms.ApplyAgg(x)
		return occ >= 0 && occ <= 1000 && occ <= x &&
			agg >= 0 && agg <= 5000 && agg <= x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ApplyAgg is monotone: more cumulative loss never means less payout.
func TestQuickAggMonotone(t *testing.T) {
	terms := Terms{OccRetention: 0, OccLimit: Unlimited, AggRetention: 100, AggLimit: 900}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return terms.ApplyAgg(a) <= terms.ApplyAgg(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
