package artifact

import (
	"fmt"
	"path/filepath"
	"strings"

	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/layer"
	"github.com/ralab/are/internal/spec"
	"github.com/ralab/are/internal/yet"
)

// Portfolio is the cached build product of a portfolio spec: the built
// layer set plus the catalog size it compiles against.
type Portfolio struct {
	P           *layer.Portfolio
	CatalogSize int
}

// Engine is the cached compile product of a portfolio spec under one
// ELT representation.
type Engine struct {
	P   *Portfolio
	Eng *core.Engine
}

// portfolioKeySpec is the hashable identity of a built portfolio.
type portfolioKeySpec struct {
	Portfolio *spec.File `json:"portfolio"`
}

// engineKeySpec is the hashable identity of a compiled engine: the
// portfolio spec plus the ELT representation it was compiled with.
type engineKeySpec struct {
	Portfolio *spec.File `json:"portfolio"`
	Lookup    string     `json:"lookup"`
}

// yetKeySpec is the hashable identity of a generated YET shard. The
// catalog size is part of it: generation draws events uniformly from
// [0, catalogSize), so the same yet spec against a different catalog is
// a different table. Lo/Hi make each trial shard its own artifact —
// trial-seeded generation means a shard is the corresponding slice of
// the full table, so shards of one job never collide and a re-dispatched
// shard is a cache hit.
type yetKeySpec struct {
	YET         spec.YETSpec `json:"yet"`
	CatalogSize int          `json:"catalogSize"`
	Lo          int          `json:"lo"`
	Hi          int          `json:"hi"`
}

// PortfolioFor returns the job's built portfolio, cached under the
// portfolio spec's content hash. The bool reports a cache hit.
func PortfolioFor(c *Cache, js *spec.Job) (*Portfolio, bool, error) {
	key, err := ContentKey("portfolio", portfolioKeySpec{Portfolio: js.Portfolio})
	if err != nil {
		return nil, false, err
	}
	v, hit, err := c.Get(key, func() (any, error) {
		p, cs, err := js.BuildPortfolio()
		if err != nil {
			return nil, err
		}
		return &Portfolio{P: p, CatalogSize: cs}, nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("portfolio: %w", err)
	}
	return v.(*Portfolio), hit, nil
}

// EngineFor returns the job's compiled engine (building the portfolio
// first, via its own cache entry). The bool reports an engine cache hit.
func EngineFor(c *Cache, js *spec.Job) (*Engine, bool, error) {
	key, err := ContentKey("engine", engineKeySpec{Portfolio: js.Portfolio, Lookup: js.Lookup})
	if err != nil {
		return nil, false, err
	}
	v, hit, err := c.Get(key, func() (any, error) {
		p, _, err := PortfolioFor(c, js)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(p.P, p.CatalogSize, LookupKind(js.Lookup))
		if err != nil {
			return nil, err
		}
		return &Engine{P: p, Eng: eng}, nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("engine: %w", err)
	}
	return v.(*Engine), hit, nil
}

// TableFor returns the job's full generated Year Event Table, cached.
func TableFor(c *Cache, js *spec.Job) (*yet.Table, bool, error) {
	return ShardFor(c, js, 0, js.YET.Trials)
}

// CachedTable returns the job's full table only if it is already
// resident (a direct job or an earlier TableFor built it), without
// triggering generation. Shard executors prefer this over generating
// their range: serving trials [lo, hi) of a resident table costs
// nothing (core.NewTableRangeSource), where even a cached shard build
// costs its first generation.
func CachedTable(c *Cache, js *spec.Job) (*yet.Table, bool) {
	key, err := ContentKey("yet", yetKeySpec{
		YET:         js.YET,
		CatalogSize: js.Portfolio.CatalogSize,
		Lo:          0,
		Hi:          js.YET.Trials,
	})
	if err != nil {
		return nil, false
	}
	v, ok := c.Peek(key)
	if !ok {
		return nil, false
	}
	return v.(*yet.Table), true
}

// ShardFor returns trials [lo, hi) of the job's Year Event Table,
// cached per range: a distributed worker materialises only its shard.
//
// With a spill directory configured the data plane goes zero-copy
// instead: the full table is generated once, serialised to disk, and
// mapped; every range — full tables for direct jobs, shards for the
// distributed executor — is then a Slice view of that one shared
// mapping (bounds copy only, no payload). A worker's first shard of a
// job pays the full generation, but every subsequent shard, job and
// process restart over the same spec is a decode-free file mapping.
// Spill failures (disk full, unwritable dir) degrade to the heap path.
func ShardFor(c *Cache, js *spec.Job, lo, hi int) (*yet.Table, bool, error) {
	catalogSize := js.Portfolio.CatalogSize
	if c.SpillDir() != "" {
		full, hit, err := mappedTableFor(c, js)
		if err == nil {
			if lo == 0 && hi == js.YET.Trials {
				return full, hit, nil
			}
			if 0 <= lo && lo <= hi && hi <= full.NumTrials() {
				return full.Slice(lo, hi), hit, nil
			}
			return nil, false, fmt.Errorf("yet: %w: [%d, %d) of %d", yet.ErrBadRange, lo, hi, full.NumTrials())
		}
		// Generation errors (bad spec, bad range) recur identically on
		// the heap path below and are reported from there; only spill
		// I/O failures actually take this fallback.
	}
	key, err := ContentKey("yet", yetKeySpec{YET: js.YET, CatalogSize: catalogSize, Lo: lo, Hi: hi})
	if err != nil {
		return nil, false, err
	}
	v, hit, err := c.Get(key, func() (any, error) {
		return yet.GenerateRange(yet.UniformSource(catalogSize), js.YET.ToConfig(), lo, hi)
	})
	if err != nil {
		return nil, false, fmt.Errorf("yet: %w", err)
	}
	return v.(*yet.Table), hit, nil
}

// mappedTableFor returns the job's full table as an mmap-backed view,
// building the spill file on first use. It caches under the same key
// as the heap full-table build, so CachedTable and a later no-spill
// ShardFor observe it interchangeably (mapped and heap tables are
// observationally identical — internal/yet's oracle tests pin that).
// A spill file surviving from an earlier process is mapped without
// regenerating: the content-hashed name guarantees it is the right
// table, and WriteFile's atomic rename guarantees it is whole.
func mappedTableFor(c *Cache, js *spec.Job) (*yet.Table, bool, error) {
	catalogSize := js.Portfolio.CatalogSize
	key, err := ContentKey("yet", yetKeySpec{
		YET:         js.YET,
		CatalogSize: catalogSize,
		Lo:          0,
		Hi:          js.YET.Trials,
	})
	if err != nil {
		return nil, false, err
	}
	v, hit, err := c.Get(key, func() (any, error) {
		path := filepath.Join(c.SpillDir(), strings.TrimPrefix(key, "yet:")+".yet")
		if t, err := yet.Map(path); err == nil {
			return t, nil
		}
		t, err := yet.GenerateRange(yet.UniformSource(catalogSize), js.YET.ToConfig(), 0, js.YET.Trials)
		if err != nil {
			return nil, err
		}
		if err := yet.WriteFile(path, t); err != nil {
			return nil, err
		}
		return yet.Map(path)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*yet.Table), hit, nil
}

// SweepVariants lowers a validated sweep spec into the engine's
// variant set, preserving order (variant k of the result prices spec
// variant k). Unnamed variants get positional names so sweep results
// are always labelled.
func SweepVariants(s *spec.SweepSpec) []core.Variant {
	out := make([]core.Variant, len(s.Variants))
	for i := range s.Variants {
		vs := &s.Variants[i]
		v := core.Variant{
			Name:               vs.Name,
			OccRetention:       vs.OccRetention,
			AggRetention:       vs.AggRetention,
			ParticipationScale: vs.ParticipationScale,
		}
		if v.Name == "" {
			v.Name = fmt.Sprintf("variant-%d", i)
		}
		if vs.OccLimit != nil {
			l := float64(*vs.OccLimit)
			v.OccLimit = &l
		}
		if vs.AggLimit != nil {
			l := float64(*vs.AggLimit)
			v.AggLimit = &l
		}
		out[i] = v
	}
	return out
}

// Uncertainty lowers a validated job's uncertainty block into the
// engine's option. Mean mode — explicit or omitted — is the zero
// value, so jobs that never mention uncertainty run (and fuse, and
// cache) exactly as they always have. TrialOffset stays 0 here;
// distributed executors overwrite it with their shard's low bound.
func Uncertainty(js *spec.Job) core.Uncertainty {
	if !js.Sampled() {
		return core.Uncertainty{}
	}
	return core.Uncertainty{Mode: core.UncertaintySampled, Seed: js.Uncertainty.Seed}
}

// LookupKind maps a validated job lookup name to the engine constant.
func LookupKind(s string) core.LookupKind {
	switch s {
	case "sorted":
		return core.LookupSorted
	case "hash":
		return core.LookupHash
	case "cuckoo":
		return core.LookupCuckoo
	case "combined":
		return core.LookupCombined
	default:
		return core.LookupDirect
	}
}
