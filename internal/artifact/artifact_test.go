package artifact

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/ralab/are/internal/spec"
)

func testJob(t *testing.T, seed uint64, trials int) *spec.Job {
	t.Helper()
	body := fmt.Sprintf(`{
	  "portfolio": {
	    "catalogSize": 10000,
	    "elts": [{"id": 1, "generate": {"seed": 5, "numRecords": 800}}],
	    "layers": [{"id": 1, "elts": [1], "terms": {"occRetention": 1e5, "occLimit": 3e6}}]
	  },
	  "yet": {"seed": %d, "trials": %d, "meanEvents": 25}
	}`, seed, trials)
	j, err := spec.ParseJob(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	var builds int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Get("k", func() (any, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times", builds)
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	c := NewCache(8)
	boom := errors.New("boom")
	if _, _, err := c.Get("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Get("k", func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry after failure: v=%v hit=%v err=%v", v, hit, err)
	}
}

// ShardFor must hand back exactly the corresponding slice of the full
// table — the property the whole distributed design rests on.
func TestShardForMatchesTableFor(t *testing.T) {
	c := NewCache(16)
	js := testJob(t, 3, 400)
	full, hit, err := TableFor(c, js)
	if err != nil || hit {
		t.Fatalf("TableFor: hit=%v err=%v", hit, err)
	}
	shard, hit, err := ShardFor(c, js, 150, 300)
	if err != nil || hit {
		t.Fatalf("ShardFor: hit=%v err=%v", hit, err)
	}
	want := full.Slice(150, 300)
	if shard.NumTrials() != want.NumTrials() || shard.NumOccurrences() != want.NumOccurrences() {
		t.Fatalf("shard shape (%d, %d) != slice (%d, %d)",
			shard.NumTrials(), shard.NumOccurrences(), want.NumTrials(), want.NumOccurrences())
	}
	for i := 0; i < shard.NumTrials(); i++ {
		got, exp := shard.Trial(i), want.Trial(i)
		for j := range got {
			if got[j] != exp[j] {
				t.Fatalf("trial %d occ %d: %+v != %+v", i, j, got[j], exp[j])
			}
		}
	}
	// Same range again: a cache hit, same object.
	again, hit, err := ShardFor(c, js, 150, 300)
	if err != nil || !hit || again != shard {
		t.Fatalf("repeat ShardFor: hit=%v same=%v err=%v", hit, again == shard, err)
	}
}

func TestEngineForSharesPortfolioEntry(t *testing.T) {
	c := NewCache(16)
	js := testJob(t, 1, 50)
	eng, hit, err := EngineFor(c, js)
	if err != nil || hit {
		t.Fatalf("EngineFor: hit=%v err=%v", hit, err)
	}
	if eng.Eng == nil || eng.P == nil || eng.P.P == nil {
		t.Fatal("engine artifact incomplete")
	}
	// The portfolio build is its own entry: PortfolioFor now hits.
	p, hit, err := PortfolioFor(c, js)
	if err != nil || !hit {
		t.Fatalf("PortfolioFor after EngineFor: hit=%v err=%v", hit, err)
	}
	if p != eng.P {
		t.Fatal("engine does not share the cached portfolio")
	}
}

func TestLookupKindNames(t *testing.T) {
	for name, want := range map[string]string{
		"": "direct", "direct": "direct", "sorted": "sorted",
		"hash": "hash", "cuckoo": "cuckoo", "combined": "combined",
	} {
		if got := LookupKind(name).String(); got != want {
			t.Errorf("LookupKind(%q) = %s, want %s", name, got, want)
		}
	}
}
