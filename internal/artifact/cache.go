// Package artifact is the shared store of expensive, immutable build
// products — generated Year Event Tables (full or trial-sharded),
// built portfolios and compiled engines — keyed by the content hash of
// the specification that produces them. Both the ared job scheduler and
// the distributed shard executor draw from one Cache, so a worker that
// serves shards of the same job repeatedly, or mixes direct jobs with
// shard work, generates and compiles each artifact once.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Cache is the shared-artifact store: expensive, immutable build
// products (generated Year Event Tables, compiled engines) keyed by the
// content hash of the specification that produces them. Because every
// generator in the repo is deterministic in its spec, the spec's
// canonical JSON is the artifact's identity — two jobs that describe the
// same YET share one table, whichever arrives first.
//
// Get has singleflight semantics: concurrent requests for one key block
// on a single build instead of duplicating it, which is what makes
// "submit the same analysis twice" cost one generation. Failed builds
// are not cached, so a transient failure does not poison the key.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry

	spillDir string // non-empty enables the mmap-backed table path

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	ready chan struct{} // closed when val/err are set
	done  bool          // guarded by Cache.mu; true once build finished
	val   any
	err   error
}

// NewCache returns a cache bounded to maxEntries completed artifacts
// (<= 0 selects the default of 64). Eviction is arbitrary-completed:
// artifacts are cheap to rebuild (deterministic generators), so the
// bound exists to cap memory, not to optimise hit rate.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &Cache{max: maxEntries, entries: make(map[string]*cacheEntry)}
}

// Get returns the artifact for key, building it with build on the first
// request. The second return reports whether this was a cache hit
// (including "joined an in-flight build of the same key").
func (c *Cache) Get(key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.val, true, e.err
	}
	c.evictLocked()
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = build()
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key) // don't cache failures
	} else {
		e.done = true
	}
	c.mu.Unlock()
	close(e.ready)
	return e.val, false, e.err
}

// evictLocked drops one completed entry when the cache is full. In-flight
// builds are never evicted (waiters hold their entry pointers anyway).
func (c *Cache) evictLocked() {
	if len(c.entries) < c.max {
		return
	}
	for k, e := range c.entries {
		if e.done {
			delete(c.entries, k)
			return
		}
	}
}

// SetSpillDir enables the zero-copy table path: generated Year Event
// Tables are serialised once into dir (named by content hash) and
// served to every job as views of one shared read-only file mapping,
// so N concurrent jobs over the same table cost one decode-free
// mapping instead of N heap copies. The directory is created if
// absent; its files double as a warm cache across process restarts
// (content-hashed names make stale files impossible, only orphaned
// ones). Call before the cache is in use.
func (c *Cache) SetSpillDir(dir string) error {
	if dir == "" {
		c.spillDir = ""
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: spill dir: %w", err)
	}
	c.spillDir = dir
	return nil
}

// SpillDir returns the configured spill directory ("" when the heap
// table path is in use).
func (c *Cache) SpillDir() string { return c.spillDir }

// Peek returns the completed artifact for key, without building,
// blocking on an in-flight build, or touching the hit/miss stats — an
// opportunistic read for callers that can use an already-built artifact
// but would otherwise build something cheaper.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.done {
		return e.val, true
	}
	return nil, false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of resident entries (completed or in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ContentKey derives the cache identity of a spec: a namespace prefix
// plus the SHA-256 of its canonical JSON encoding. Go's encoding/json
// marshals struct fields in declaration order, so equal specs produce
// equal bytes.
func ContentKey(prefix string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("artifact: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return prefix + ":" + hex.EncodeToString(sum[:]), nil
}
