package artifact

// Coverage for the spill-dir (zero-copy) table path: mapped tables and
// their shard views must be bitwise-interchangeable with the heap
// path, spill files must survive as a warm cache across cache
// instances, and concurrent jobs sharing one mapping must produce
// bitwise-identical Year Loss Tables (run under -race in CI).

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/ralab/are/internal/core"
)

func spillCache(t *testing.T, entries int) (*Cache, string) {
	t.Helper()
	dir := t.TempDir()
	c := NewCache(entries)
	if err := c.SetSpillDir(dir); err != nil {
		t.Fatal(err)
	}
	return c, dir
}

// TestSpillServesSharedViews: with a spill dir, the full table and
// every shard are views over one serialised artifact, bitwise equal to
// the heap build of the same spec.
func TestSpillServesSharedViews(t *testing.T) {
	c, dir := spillCache(t, 8)
	js := testJob(t, 11, 300)

	heap, _, err := TableFor(NewCache(4), js)
	if err != nil {
		t.Fatal(err)
	}
	full, hit, err := TableFor(c, js)
	if err != nil || hit {
		t.Fatalf("spill TableFor: hit=%v err=%v", hit, err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.yet"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill dir holds %d .yet files (err=%v), want 1", len(files), err)
	}
	for _, r := range [][2]int{{0, 300}, {0, 97}, {97, 201}, {201, 300}} {
		shard, _, err := ShardFor(c, js, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if shard.Mapped() != full.Mapped() {
			t.Fatalf("shard [%d,%d) backing differs from full table", r[0], r[1])
		}
		want := heap.Slice(r[0], r[1])
		if shard.NumTrials() != want.NumTrials() || shard.NumOccurrences() != want.NumOccurrences() {
			t.Fatalf("shard [%d,%d) shape mismatch", r[0], r[1])
		}
		for i := 0; i < shard.NumTrials(); i++ {
			ge, we := shard.TrialEvents(i), want.TrialEvents(i)
			gt, wt := shard.TrialTimes(i), want.TrialTimes(i)
			for j := range we {
				if ge[j] != we[j] || math.Float64bits(gt[j]) != math.Float64bits(wt[j]) {
					t.Fatalf("shard [%d,%d) trial %d occ %d differs", r[0], r[1], i, j)
				}
			}
		}
	}
	// A second ShardFor over the same table is a hit on the shared
	// mapping, not a regeneration.
	if _, hit, err := ShardFor(c, js, 97, 201); err != nil || !hit {
		t.Fatalf("repeat ShardFor: hit=%v err=%v", hit, err)
	}
}

// TestSpillWarmRestart: a fresh cache over the same spill dir maps the
// existing file instead of regenerating and rewriting it.
func TestSpillWarmRestart(t *testing.T) {
	c1, dir := spillCache(t, 8)
	js := testJob(t, 12, 200)
	first, _, err := TableFor(c1, js)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.yet"))
	if len(files) != 1 {
		t.Fatalf("spill dir holds %d files, want 1", len(files))
	}
	before, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(8)
	if err := c2.SetSpillDir(dir); err != nil {
		t.Fatal(err)
	}
	second, hit, err := TableFor(c2, js)
	if err != nil || hit {
		t.Fatalf("warm TableFor: hit=%v err=%v", hit, err)
	}
	after, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("warm restart rewrote the spill file")
	}
	if first.NumOccurrences() != second.NumOccurrences() {
		t.Fatal("warm restart changed table content")
	}
	for i := 0; i < first.NumTrials(); i++ {
		fe, se := first.TrialEvents(i), second.TrialEvents(i)
		for j := range fe {
			if fe[j] != se[j] {
				t.Fatalf("warm restart trial %d differs", i)
			}
		}
	}
}

// TestSpillUnwritableFallsBack: a hostile spill dir degrades to the
// heap path instead of failing jobs.
func TestSpillUnwritableFallsBack(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	c := NewCache(8)
	c.spillDir = dir // bypass SetSpillDir's MkdirAll (dir exists, read-only)
	js := testJob(t, 13, 50)
	tab, _, err := TableFor(c, js)
	if err != nil {
		t.Fatalf("unwritable spill dir failed the job: %v", err)
	}
	if tab.Mapped() {
		t.Fatal("table claims to be mapped despite unwritable spill dir")
	}
}

// TestConcurrentJobsShareMappingBitwise is the -race oracle the issue
// pins: several concurrent jobs running over one shared mapped table
// must each materialise a Year Loss Table bitwise identical to the
// heap-backed single run.
func TestConcurrentJobsShareMappingBitwise(t *testing.T) {
	c, _ := spillCache(t, 8)
	js := testJob(t, 14, 400)

	eng, _, err := EngineFor(c, js)
	if err != nil {
		t.Fatal(err)
	}
	heap, _, err := TableFor(NewCache(4), js)
	if err != nil {
		t.Fatal(err)
	}
	refSink := core.NewFullYLT()
	if _, err := eng.Eng.RunPipeline(core.NewTableSource(heap), refSink, core.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	ref := refSink.Result()

	const jobs = 4
	var wg sync.WaitGroup
	results := make([]*core.Result, jobs)
	errs := make([]error, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tab, _, err := TableFor(c, js) // all goroutines share one mapping
			if err != nil {
				errs[g] = err
				return
			}
			sink := core.NewFullYLT()
			if _, err := eng.Eng.RunPipeline(core.NewTableSource(tab), sink, core.Options{Workers: 2}); err != nil {
				errs[g] = err
				return
			}
			results[g] = sink.Result()
		}(g)
	}
	wg.Wait()
	for g := 0; g < jobs; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		got := results[g]
		for l := range ref.AggLoss {
			for i := range ref.AggLoss[l] {
				if math.Float64bits(got.AggLoss[l][i]) != math.Float64bits(ref.AggLoss[l][i]) ||
					math.Float64bits(got.MaxOccLoss[l][i]) != math.Float64bits(ref.MaxOccLoss[l][i]) {
					t.Fatalf("job %d: YLT differs from heap run at layer %d trial %d", g, l, i)
				}
			}
		}
	}
}
