// Package lossdist implements the extension the paper sketches in §IV:
// representing event losses as distributions rather than simple means
// ("secondary uncertainty"), in which case "the algorithm would likely
// benefit from use of a numerical library for convolution".
//
// A loss distribution is discretised onto a uniform bucket grid. The
// package provides the two operations aggregate analysis needs:
//
//   - Convolve: the distribution of the sum of independent losses
//     (combining losses across ELTs, or occurrence losses within a
//     year), via direct convolution for small supports and an FFT for
//     large ones; and
//   - ApplyLayerTerms: the pushforward of a distribution through the
//     retention/limit transform min(max(X−R, 0), L), which concentrates
//     mass at 0 and at L.
//
// All code is standard library only; the FFT is implemented here.
package lossdist

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Dist is a probability distribution over losses, discretised on the grid
// {0, Step, 2*Step, ...}: P(loss = i*Step) = PMF[i]. The PMF sums to 1.
type Dist struct {
	Step float64
	PMF  []float64
}

// Construction errors.
var (
	ErrBadStep = errors.New("lossdist: Step must be positive and finite")
	ErrBadPMF  = errors.New("lossdist: PMF must be non-empty, non-negative, finite, and sum to ~1")
)

// New validates and constructs a distribution, normalising small rounding
// drift in the PMF total.
func New(step float64, pmf []float64) (*Dist, error) {
	if !(step > 0) || math.IsInf(step, 0) || math.IsNaN(step) {
		return nil, ErrBadStep
	}
	if len(pmf) == 0 {
		return nil, ErrBadPMF
	}
	var total float64
	for _, p := range pmf {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, ErrBadPMF
		}
		total += p
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("%w: sum %v", ErrBadPMF, total)
	}
	out := make([]float64, len(pmf))
	for i, p := range pmf {
		out[i] = p / total
	}
	return &Dist{Step: step, PMF: out}, nil
}

// Point returns the degenerate distribution concentrated at value
// (rounded to the grid).
func Point(step, value float64) (*Dist, error) {
	if !(step > 0) || value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return nil, ErrBadStep
	}
	idx := int(math.Round(value / step))
	pmf := make([]float64, idx+1)
	pmf[idx] = 1
	return &Dist{Step: step, PMF: pmf}, nil
}

// Discretise puts a continuous density onto the grid by sampling the
// given CDF at bucket boundaries over [0, maxLoss].
func Discretise(step, maxLoss float64, cdf func(float64) float64) (*Dist, error) {
	if !(step > 0) || !(maxLoss > 0) {
		return nil, ErrBadStep
	}
	n := int(math.Ceil(maxLoss/step)) + 1
	pmf := make([]float64, n)
	prev := 0.0
	for i := 0; i < n-1; i++ {
		c := cdf(float64(i+1) * step)
		if c < prev {
			c = prev // enforce monotonicity against noisy CDFs
		}
		if c > 1 {
			c = 1
		}
		pmf[i] = c - prev
		prev = c
	}
	pmf[n-1] = 1 - prev // tail mass onto the last bucket
	return New(step, pmf)
}

// Mean returns E[X].
func (d *Dist) Mean() float64 {
	var m float64
	for i, p := range d.PMF {
		m += float64(i) * d.Step * p
	}
	return m
}

// Variance returns Var[X].
func (d *Dist) Variance() float64 {
	m := d.Mean()
	var v float64
	for i, p := range d.PMF {
		x := float64(i)*d.Step - m
		v += x * x * p
	}
	return v
}

// Quantile returns the smallest grid loss x with P(X <= x) >= q.
func (d *Dist) Quantile(q float64) float64 {
	if q <= 0 {
		return 0
	}
	var c float64
	for i, p := range d.PMF {
		c += p
		if c >= q {
			return float64(i) * d.Step
		}
	}
	return float64(len(d.PMF)-1) * d.Step
}

// ExceedanceProb returns P(X > x).
func (d *Dist) ExceedanceProb(x float64) float64 {
	var c float64
	for i, p := range d.PMF {
		if float64(i)*d.Step > x {
			c += p
		}
	}
	return c
}

// directThreshold is the support-size product below which direct
// convolution beats the FFT (measured; see BenchmarkConvolve).
const directThreshold = 1 << 14

// ErrStepMismatch is returned when convolving distributions on different
// grids.
var ErrStepMismatch = errors.New("lossdist: distributions must share the same Step")

// Convolve returns the distribution of X+Y for independent X, Y on the
// same grid. Small supports use direct convolution; large ones a
// real-input FFT.
func Convolve(a, b *Dist) (*Dist, error) {
	if a.Step != b.Step {
		return nil, ErrStepMismatch
	}
	n := len(a.PMF) + len(b.PMF) - 1
	var pmf []float64
	if len(a.PMF)*len(b.PMF) <= directThreshold {
		pmf = convolveDirect(a.PMF, b.PMF)
	} else {
		pmf = convolveFFT(a.PMF, b.PMF)
	}
	pmf = pmf[:n]
	// FFT round-off can leave tiny negatives; clamp and renormalise.
	var total float64
	for i, p := range pmf {
		if p < 0 {
			pmf[i] = 0
		} else {
			total += p
		}
	}
	for i := range pmf {
		pmf[i] /= total
	}
	return &Dist{Step: a.Step, PMF: pmf}, nil
}

// ConvolveN folds Convolve over one or more distributions.
func ConvolveN(ds ...*Dist) (*Dist, error) {
	if len(ds) == 0 {
		return nil, errors.New("lossdist: ConvolveN needs at least one distribution")
	}
	acc := ds[0]
	var err error
	for _, d := range ds[1:] {
		acc, err = Convolve(acc, d)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func convolveDirect(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func convolveFFT(a, b []float64) []float64 {
	n := 1
	for n < len(a)+len(b)-1 {
		n <<= 1
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fft(fa, false)
	fft(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fft(fa, true)
	out := make([]float64, len(a)+len(b)-1)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// fft is an in-place iterative radix-2 Cooley-Tukey transform.
// len(x) must be a power of two.
func fft(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := x[start+k]
				v := x[start+k+length/2] * w
				x[start+k] = u + v
				x[start+k+length/2] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// ApplyLayerTerms returns the distribution of min(max(X−retention, 0),
// limit): mass below the retention concentrates at zero, mass above
// retention+limit at the limit. limit may be +Inf.
func ApplyLayerTerms(d *Dist, retention, limit float64) (*Dist, error) {
	if retention < 0 || math.IsNaN(retention) || math.IsInf(retention, 0) {
		return nil, errors.New("lossdist: retention must be finite and >= 0")
	}
	if !(limit > 0) || math.IsNaN(limit) {
		return nil, errors.New("lossdist: limit must be positive (may be +Inf)")
	}
	rIdx := int(math.Round(retention / d.Step))
	var lIdx int
	if math.IsInf(limit, 1) {
		lIdx = len(d.PMF) // unreachable cap
	} else {
		lIdx = int(math.Round(limit / d.Step))
	}
	outLen := len(d.PMF) - rIdx
	if outLen < 1 {
		outLen = 1
	}
	if outLen > lIdx+1 {
		outLen = lIdx + 1
	}
	pmf := make([]float64, outLen)
	for i, p := range d.PMF {
		j := i - rIdx
		if j <= 0 {
			pmf[0] += p
		} else if j >= lIdx {
			pmf[outLen-1] += p
		} else {
			pmf[j] += p
		}
	}
	return &Dist{Step: d.Step, PMF: pmf}, nil
}
