package lossdist

import (
	"errors"
	"math"
)

// Compound (annual aggregate) loss distributions: the analytical
// counterpart to the Monte Carlo engine for a single layer. When event
// losses are represented as distributions, the annual loss
// S = X1 + ... + XN with N ~ Poisson(lambda) follows a compound Poisson
// law, computed here with the Panjer recursion — the standard actuarial
// algorithm (and the convolution-flavoured machinery §IV anticipates).
// Tests cross-validate it against the simulation engine.

// ErrBadLambda reports an invalid Poisson frequency.
var ErrBadLambda = errors.New("lossdist: lambda must be positive and finite")

// CompoundPoisson returns the distribution of the sum of a
// Poisson(lambda) number of i.i.d. losses with the given severity
// distribution, truncated at maxBuckets grid points (remaining tail mass
// is collapsed onto the last bucket).
//
// Panjer's recursion for the Poisson case:
//
//	g(0) = exp(lambda*(f(0)-1))
//	g(s) = (lambda/s) * sum_{j=1..s} j*f(j)*g(s-j)
//
// where f is the severity PMF and g the aggregate PMF on the same grid.
func CompoundPoisson(lambda float64, severity *Dist, maxBuckets int) (*Dist, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
		return nil, ErrBadLambda
	}
	if maxBuckets < 2 {
		return nil, errors.New("lossdist: maxBuckets must be at least 2")
	}
	f := severity.PMF
	n := maxBuckets
	g := make([]float64, n)
	g[0] = math.Exp(lambda * (f[0] - 1))
	if g[0] == 0 {
		// lambda*(1-f(0)) too large for direct recursion start; work in
		// log space via scaling: run the recursion on a defensive
		// underflow floor and renormalise at the end.
		g[0] = math.SmallestNonzeroFloat64
	}
	for s := 1; s < n; s++ {
		var sum float64
		jMax := s
		if jMax > len(f)-1 {
			jMax = len(f) - 1
		}
		for j := 1; j <= jMax; j++ {
			if f[j] == 0 {
				continue
			}
			sum += float64(j) * f[j] * g[s-j]
		}
		g[s] = lambda / float64(s) * sum
	}
	var total float64
	for _, p := range g {
		total += p
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, errors.New("lossdist: Panjer recursion underflowed; increase Step or reduce lambda")
	}
	// Tail mass beyond the truncation collapses onto the last bucket.
	if total < 1 {
		g[n-1] += 1 - total
	} else {
		for i := range g {
			g[i] /= total
		}
	}
	return &Dist{Step: severity.Step, PMF: g}, nil
}

// CompoundMean returns the exact mean lambda*E[X] of the compound Poisson
// law (no truncation), for validating the recursion.
func CompoundMean(lambda float64, severity *Dist) float64 {
	return lambda * severity.Mean()
}

// CompoundVariance returns the exact variance lambda*E[X^2] of the
// compound Poisson law (no truncation).
func CompoundVariance(lambda float64, severity *Dist) float64 {
	var m2 float64
	for i, p := range severity.PMF {
		x := float64(i) * severity.Step
		m2 += x * x * p
	}
	return lambda * m2
}
