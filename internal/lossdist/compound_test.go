package lossdist

import (
	"errors"
	"math"
	"sort"
	"testing"

	"github.com/ralab/are/internal/rng"
	"github.com/ralab/are/internal/stats"
)

func TestCompoundPoissonMoments(t *testing.T) {
	// Severity: uniform on {100, 200, 300}.
	sev := mustDist(t, 100, []float64{0, 1.0 / 3, 1.0 / 3, 1.0 / 3})
	lambda := 5.0
	agg, err := CompoundPoisson(lambda, sev, 400)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := CompoundMean(lambda, sev) // 5 * 200 = 1000
	if math.Abs(wantMean-1000) > 1e-9 {
		t.Fatalf("CompoundMean = %v", wantMean)
	}
	if math.Abs(agg.Mean()-wantMean)/wantMean > 0.005 {
		t.Fatalf("aggregate mean = %v, want ~%v", agg.Mean(), wantMean)
	}
	wantVar := CompoundVariance(lambda, sev) // 5 * E[X^2]
	if math.Abs(agg.Variance()-wantVar)/wantVar > 0.01 {
		t.Fatalf("aggregate variance = %v, want ~%v", agg.Variance(), wantVar)
	}
}

func TestCompoundPoissonZeroMass(t *testing.T) {
	// P(S=0) = exp(-lambda*(1-f(0))).
	sev := mustDist(t, 10, []float64{0.5, 0.5}) // f(0) = 0.5
	lambda := 2.0
	agg, err := CompoundPoisson(lambda, sev, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-lambda * 0.5)
	if math.Abs(agg.PMF[0]-want) > 1e-9 {
		t.Fatalf("P(S=0) = %v, want %v", agg.PMF[0], want)
	}
}

func TestCompoundPoissonErrors(t *testing.T) {
	sev := mustDist(t, 1, []float64{0.5, 0.5})
	if _, err := CompoundPoisson(0, sev, 10); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda 0: %v", err)
	}
	if _, err := CompoundPoisson(math.Inf(1), sev, 10); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda inf: %v", err)
	}
	if _, err := CompoundPoisson(1, sev, 1); err == nil {
		t.Error("single bucket accepted")
	}
}

// The Panjer recursion must agree with brute-force Monte Carlo of the
// same compound process — the analytical/simulation cross-validation.
func TestCompoundPoissonMatchesMonteCarlo(t *testing.T) {
	sev := mustDist(t, 50, []float64{0, 0.2, 0.3, 0.3, 0.1, 0.1}) // on {0..250}
	lambda := 3.0
	agg, err := CompoundPoisson(lambda, sev, 256)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(42)
	sevAlias, err := stats.NewAlias(sev.PMF)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	samples := make([]float64, trials)
	for i := range samples {
		n := stats.Poisson(r, lambda)
		var s float64
		for j := 0; j < n; j++ {
			s += float64(sevAlias.Draw(r)) * sev.Step
		}
		samples[i] = s
	}
	sort.Float64s(samples)

	// Compare quantiles.
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		mc := samples[int(q*float64(trials))]
		an := agg.Quantile(q)
		if math.Abs(mc-an) > 2*sev.Step {
			t.Errorf("quantile %v: MC %v vs Panjer %v", q, mc, an)
		}
	}
	// Compare means.
	var mcMean float64
	for _, s := range samples {
		mcMean += s
	}
	mcMean /= trials
	if math.Abs(mcMean-agg.Mean())/agg.Mean() > 0.02 {
		t.Errorf("mean: MC %v vs Panjer %v", mcMean, agg.Mean())
	}
}

// Layer terms on the analytical aggregate must agree with terms applied
// inside the Monte Carlo loop.
func TestCompoundWithLayerTermsMatchesMC(t *testing.T) {
	sev := mustDist(t, 100, []float64{0, 0.5, 0.25, 0.15, 0.1})
	lambda := 4.0
	retention, limit := 300.0, 800.0

	agg, err := CompoundPoisson(lambda, sev, 512)
	if err != nil {
		t.Fatal(err)
	}
	layered, err := ApplyLayerTerms(agg, retention, limit)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(7)
	alias, err := stats.NewAlias(sev.PMF)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300000
	var sum float64
	for i := 0; i < trials; i++ {
		n := stats.Poisson(r, lambda)
		var s float64
		for j := 0; j < n; j++ {
			s += float64(alias.Draw(r)) * sev.Step
		}
		s = math.Min(math.Max(s-retention, 0), limit)
		sum += s
	}
	mcMean := sum / trials
	if math.Abs(mcMean-layered.Mean()) > 0.02*limit {
		t.Fatalf("layered mean: MC %v vs analytical %v", mcMean, layered.Mean())
	}
}

func TestCompoundPoissonLargeLambdaStable(t *testing.T) {
	// lambda large enough that exp(-lambda) underflows: the recursion
	// must still return a valid renormalised distribution.
	sev := mustDist(t, 1000, []float64{0, 0.6, 0.3, 0.1})
	agg, err := CompoundPoisson(900, sev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range agg.PMF {
		if p < 0 || math.IsNaN(p) {
			t.Fatal("invalid mass in large-lambda aggregate")
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("total mass %v", total)
	}
	want := CompoundMean(900, sev)
	if math.Abs(agg.Mean()-want)/want > 0.05 {
		t.Fatalf("large-lambda mean %v, want ~%v", agg.Mean(), want)
	}
}

func BenchmarkCompoundPoisson(b *testing.B) {
	pmf := make([]float64, 256)
	pmf[0] = 0.5
	for i := 1; i < len(pmf); i++ {
		pmf[i] = 0.5 / 255
	}
	sev, err := New(100, pmf)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompoundPoisson(10, sev, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
