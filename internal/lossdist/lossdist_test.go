package lossdist

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"github.com/ralab/are/internal/rng"
)

func mustDist(t testing.TB, step float64, pmf []float64) *Dist {
	t.Helper()
	d, err := New(step, pmf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []float64{1}); !errors.Is(err, ErrBadStep) {
		t.Errorf("zero step: %v", err)
	}
	if _, err := New(math.Inf(1), []float64{1}); !errors.Is(err, ErrBadStep) {
		t.Errorf("inf step: %v", err)
	}
	if _, err := New(1, nil); !errors.Is(err, ErrBadPMF) {
		t.Errorf("empty pmf: %v", err)
	}
	if _, err := New(1, []float64{0.5, -0.1, 0.6}); !errors.Is(err, ErrBadPMF) {
		t.Errorf("negative mass: %v", err)
	}
	if _, err := New(1, []float64{0.2, 0.2}); !errors.Is(err, ErrBadPMF) {
		t.Errorf("mass sums to 0.4: %v", err)
	}
	if _, err := New(1, []float64{math.NaN()}); !errors.Is(err, ErrBadPMF) {
		t.Errorf("NaN mass: %v", err)
	}
}

func TestNewNormalises(t *testing.T) {
	d := mustDist(t, 1, []float64{0.5, 0.5000001})
	var sum float64
	for _, p := range d.PMF {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %v after normalisation", sum)
	}
}

func TestPoint(t *testing.T) {
	d, err := Point(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 1000 || d.Variance() != 0 {
		t.Fatalf("Point mean %v var %v", d.Mean(), d.Variance())
	}
	if _, err := Point(0, 1); err == nil {
		t.Error("bad step accepted")
	}
	if _, err := Point(1, -1); err == nil {
		t.Error("negative value accepted")
	}
}

func TestMoments(t *testing.T) {
	// Two-point: 0 w.p. 0.5, 10 w.p. 0.5 -> mean 5, var 25.
	d := mustDist(t, 10, []float64{0.5, 0.5})
	if d.Mean() != 5 {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Variance() != 25 {
		t.Errorf("Variance = %v", d.Variance())
	}
}

func TestQuantileAndExceedance(t *testing.T) {
	d := mustDist(t, 1, []float64{0.25, 0.25, 0.25, 0.25}) // uniform on {0,1,2,3}
	cases := map[float64]float64{0.25: 0, 0.5: 1, 0.75: 2, 1.0: 3}
	for q, want := range cases {
		if got := d.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := d.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if p := d.ExceedanceProb(1.5); p != 0.5 {
		t.Errorf("ExceedanceProb(1.5) = %v", p)
	}
	if p := d.ExceedanceProb(3); p != 0 {
		t.Errorf("ExceedanceProb(3) = %v", p)
	}
}

func TestDiscretiseExponential(t *testing.T) {
	rate := 1.0 / 500
	cdf := func(x float64) float64 { return 1 - math.Exp(-rate*x) }
	d, err := Discretise(10, 10000, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-500)/500 > 0.03 {
		t.Fatalf("discretised exponential mean %v, want ~500", d.Mean())
	}
}

func TestDiscretiseErrors(t *testing.T) {
	if _, err := Discretise(0, 100, func(float64) float64 { return 1 }); err == nil {
		t.Error("bad step accepted")
	}
	if _, err := Discretise(1, 0, func(float64) float64 { return 1 }); err == nil {
		t.Error("bad max accepted")
	}
}

func TestConvolveKnown(t *testing.T) {
	// Sum of two fair coins {0,1}: {0:0.25, 1:0.5, 2:0.25}.
	coin := mustDist(t, 1, []float64{0.5, 0.5})
	sum, err := Convolve(coin, coin)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i, p := range want {
		if math.Abs(sum.PMF[i]-p) > 1e-12 {
			t.Fatalf("PMF[%d] = %v, want %v", i, sum.PMF[i], p)
		}
	}
}

func TestConvolveStepMismatch(t *testing.T) {
	a := mustDist(t, 1, []float64{1})
	b := mustDist(t, 2, []float64{1})
	if _, err := Convolve(a, b); !errors.Is(err, ErrStepMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestConvolveMeansAdd(t *testing.T) {
	r := rng.New(1)
	mk := func(n int) *Dist {
		pmf := make([]float64, n)
		var tot float64
		for i := range pmf {
			pmf[i] = r.Float64()
			tot += pmf[i]
		}
		for i := range pmf {
			pmf[i] /= tot
		}
		return mustDist(t, 100, pmf)
	}
	a, b := mk(50), mk(80)
	sum, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean()-(a.Mean()+b.Mean())) > 1e-6 {
		t.Fatalf("means: %v + %v != %v", a.Mean(), b.Mean(), sum.Mean())
	}
	if math.Abs(sum.Variance()-(a.Variance()+b.Variance())) > 1e-4 {
		t.Fatalf("variances: %v + %v != %v", a.Variance(), b.Variance(), sum.Variance())
	}
}

// The FFT path must agree with direct convolution.
func TestFFTMatchesDirect(t *testing.T) {
	r := rng.New(2)
	n := 300 // n*n > directThreshold forces FFT in Convolve
	pmfA := make([]float64, n)
	pmfB := make([]float64, n)
	var ta, tb float64
	for i := 0; i < n; i++ {
		pmfA[i] = r.Float64()
		pmfB[i] = r.Float64()
		ta += pmfA[i]
		tb += pmfB[i]
	}
	for i := 0; i < n; i++ {
		pmfA[i] /= ta
		pmfB[i] /= tb
	}
	direct := convolveDirect(pmfA, pmfB)
	viaFFT := convolveFFT(pmfA, pmfB)
	for i := range direct {
		if math.Abs(direct[i]-viaFFT[i]) > 1e-10 {
			t.Fatalf("FFT diverges from direct at %d: %v vs %v", i, viaFFT[i], direct[i])
		}
	}
}

func TestConvolveNFoldsAndErrors(t *testing.T) {
	coin := mustDist(t, 1, []float64{0.5, 0.5})
	sum, err := ConvolveN(coin, coin, coin, coin)
	if err != nil {
		t.Fatal(err)
	}
	// Binomial(4, 0.5): P(2) = 6/16.
	if math.Abs(sum.PMF[2]-0.375) > 1e-12 {
		t.Fatalf("binomial centre mass = %v", sum.PMF[2])
	}
	if _, err := ConvolveN(); err == nil {
		t.Error("empty ConvolveN accepted")
	}
	if one, err := ConvolveN(coin); err != nil || one != coin {
		t.Error("single-argument ConvolveN should return the input")
	}
}

func TestApplyLayerTerms(t *testing.T) {
	// Uniform on {0,100,...,900}, retention 300, limit 400.
	pmf := make([]float64, 10)
	for i := range pmf {
		pmf[i] = 0.1
	}
	d := mustDist(t, 100, pmf)
	out, err := ApplyLayerTerms(d, 300, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Mass at 0: X in {0..300} -> 0.4. Mass at 400: X in {700..900} -> 0.3.
	if math.Abs(out.PMF[0]-0.4) > 1e-12 {
		t.Errorf("mass at 0 = %v, want 0.4", out.PMF[0])
	}
	last := out.PMF[len(out.PMF)-1]
	if math.Abs(last-0.3) > 1e-12 {
		t.Errorf("mass at limit = %v, want 0.3", last)
	}
	if got := out.Mean(); math.Abs(got-(0.1*(100+200+300)+0.3*400)) > 1e-9 {
		t.Errorf("mean after terms = %v", got)
	}
}

func TestApplyLayerTermsUnlimited(t *testing.T) {
	d := mustDist(t, 1, []float64{0.5, 0.25, 0.25})
	out, err := ApplyLayerTerms(d, 1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.PMF[0]-0.75) > 1e-12 {
		t.Fatalf("mass at 0 = %v", out.PMF[0])
	}
}

func TestApplyLayerTermsErrors(t *testing.T) {
	d := mustDist(t, 1, []float64{1})
	if _, err := ApplyLayerTerms(d, -1, 10); err == nil {
		t.Error("negative retention accepted")
	}
	if _, err := ApplyLayerTerms(d, 0, 0); err == nil {
		t.Error("zero limit accepted")
	}
	// Retention beyond support: all mass at zero.
	out, err := ApplyLayerTerms(d, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.PMF[0] != 1 {
		t.Fatalf("over-retained distribution: %v", out.PMF)
	}
}

// Property: convolution preserves total mass and non-negativity.
func TestQuickConvolveIsDistribution(t *testing.T) {
	f := func(seed uint64, na, nb uint8) bool {
		r := rng.New(seed)
		mk := func(n int) *Dist {
			pmf := make([]float64, n)
			var tot float64
			for i := range pmf {
				pmf[i] = r.Float64() + 1e-9
				tot += pmf[i]
			}
			for i := range pmf {
				pmf[i] /= tot
			}
			d, err := New(1, pmf)
			if err != nil {
				return nil
			}
			return d
		}
		a, b := mk(1+int(na)%64), mk(1+int(nb)%64)
		if a == nil || b == nil {
			return false
		}
		sum, err := Convolve(a, b)
		if err != nil {
			return false
		}
		var tot float64
		for _, p := range sum.PMF {
			if p < 0 {
				return false
			}
			tot += p
		}
		return math.Abs(tot-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: layer terms never increase the mean (they only remove loss).
func TestQuickLayerTermsReduceMean(t *testing.T) {
	f := func(seed uint64, retention, limit uint16) bool {
		r := rng.New(seed)
		pmf := make([]float64, 32)
		var tot float64
		for i := range pmf {
			pmf[i] = r.Float64()
			tot += pmf[i]
		}
		for i := range pmf {
			pmf[i] /= tot
		}
		d, err := New(10, pmf)
		if err != nil {
			return false
		}
		out, err := ApplyLayerTerms(d, float64(retention%200), 10+float64(limit%500))
		if err != nil {
			return false
		}
		return out.Mean() <= d.Mean()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Ablation: where does the FFT overtake direct convolution? The
// directThreshold constant is justified by this benchmark.
func BenchmarkConvolve(b *testing.B) {
	for _, n := range []int{32, 128, 512, 2048} {
		pmf := make([]float64, n)
		for i := range pmf {
			pmf[i] = 1 / float64(n)
		}
		d := &Dist{Step: 1, PMF: pmf}
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				convolveDirect(d.PMF, d.PMF)
			}
		})
		b.Run(fmt.Sprintf("fft/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				convolveFFT(d.PMF, d.PMF)
			}
		})
	}
}
