package exposure

import (
	"errors"
	"testing"
)

func TestGenerateBasic(t *testing.T) {
	s, err := Generate(3, Config{Seed: 1, NumBuildings: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 3 || len(s.Buildings) != 5000 {
		t.Fatalf("ID=%d len=%d", s.ID, len(s.Buildings))
	}
	if s.Currency != "USD" || s.Name == "" {
		t.Fatalf("defaults not applied: %q %q", s.Currency, s.Name)
	}
	for _, b := range s.Buildings {
		if b.X < 0 || b.X > 1000 || b.Y < 0 || b.Y > 1000 {
			t.Fatalf("building %d outside plane: (%v,%v)", b.ID, b.X, b.Y)
		}
		if b.TIV <= 0 {
			t.Fatalf("building %d TIV %v", b.ID, b.TIV)
		}
		if b.Deductible < 0 || b.Deductible > b.TIV {
			t.Fatalf("building %d deductible %v of TIV %v", b.ID, b.Deductible, b.TIV)
		}
		if b.Limit <= 0 || b.Limit > b.TIV {
			t.Fatalf("building %d limit %v of TIV %v", b.ID, b.Limit, b.TIV)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(1, Config{Seed: 5, NumBuildings: 100})
	b, _ := Generate(1, Config{Seed: 5, NumBuildings: 100})
	for i := range a.Buildings {
		if a.Buildings[i] != b.Buildings[i] {
			t.Fatalf("building %d differs across identical generations", i)
		}
	}
}

func TestGenerateDistinctIDsDiffer(t *testing.T) {
	a, _ := Generate(1, Config{Seed: 5, NumBuildings: 100})
	b, _ := Generate(2, Config{Seed: 5, NumBuildings: 100})
	same := 0
	for i := range a.Buildings {
		if a.Buildings[i].X == b.Buildings[i].X {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/100 buildings identical across set IDs", same)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, Config{Seed: 1}); !errors.Is(err, ErrNoBuildings) {
		t.Fatalf("err = %v", err)
	}
}

func TestTotalTIV(t *testing.T) {
	s, err := Generate(1, Config{Seed: 2, NumBuildings: 1000, MeanTIV: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	tot := s.TotalTIV()
	// Lognormal mean 1e6 over 1000 buildings: total should be within a
	// loose band around 1e9.
	if tot < 3e8 || tot > 3e9 {
		t.Fatalf("TotalTIV = %v, want ~1e9", tot)
	}
}

func TestClassCoverage(t *testing.T) {
	s, err := Generate(1, Config{Seed: 3, NumBuildings: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cons := map[Construction]int{}
	occ := map[Occupancy]int{}
	for _, b := range s.Buildings {
		cons[b.Construction]++
		occ[b.Occupancy]++
	}
	for _, c := range Constructions() {
		if cons[c] < 500 {
			t.Errorf("construction %v underrepresented: %d", c, cons[c])
		}
	}
	for _, o := range []Occupancy{Residential, Commercial, Industrial} {
		if occ[o] < 1000 {
			t.Errorf("occupancy %v underrepresented: %d", o, occ[o])
		}
	}
}

func TestStrings(t *testing.T) {
	if LightFrame.String() != "light-frame" || SteelFrame.String() != "steel-frame" {
		t.Error("construction names wrong")
	}
	if Construction(99).String() != "construction(99)" {
		t.Error("unknown construction name wrong")
	}
	if Residential.String() != "residential" || Occupancy(99).String() != "occupancy(99)" {
		t.Error("occupancy names wrong")
	}
}
