// Package exposure models the exposure databases consumed by the
// catastrophe model (paper §I): collections of insured buildings with
// construction type, location, value, use and coverage terms. One exposure
// set per cedant; each Event Loss Table in the aggregate analysis is
// derived from one exposure set.
package exposure

import (
	"errors"
	"fmt"

	"github.com/ralab/are/internal/rng"
	"github.com/ralab/are/internal/stats"
)

// Construction is the structural class of a building, which selects its
// vulnerability curve.
type Construction uint8

// Construction classes, ordered roughly from most to least vulnerable.
const (
	LightFrame Construction = iota
	WoodFrame
	Masonry
	ReinforcedConcrete
	SteelFrame
	numConstructions
)

// String returns the class display name.
func (c Construction) String() string {
	switch c {
	case LightFrame:
		return "light-frame"
	case WoodFrame:
		return "wood-frame"
	case Masonry:
		return "masonry"
	case ReinforcedConcrete:
		return "reinforced-concrete"
	case SteelFrame:
		return "steel-frame"
	default:
		return fmt.Sprintf("construction(%d)", uint8(c))
	}
}

// Constructions lists all construction classes.
func Constructions() []Construction {
	return []Construction{LightFrame, WoodFrame, Masonry, ReinforcedConcrete, SteelFrame}
}

// Occupancy is the building use class, affecting contents value share.
type Occupancy uint8

// Occupancy classes.
const (
	Residential Occupancy = iota
	Commercial
	Industrial
	numOccupancies
)

// String returns the occupancy display name.
func (o Occupancy) String() string {
	switch o {
	case Residential:
		return "residential"
	case Commercial:
		return "commercial"
	case Industrial:
		return "industrial"
	default:
		return fmt.Sprintf("occupancy(%d)", uint8(o))
	}
}

// Building is one insured risk in an exposure set.
type Building struct {
	ID           uint32
	X, Y         float64 // location on the synthetic 1000x1000 km plane
	Construction Construction
	Occupancy    Occupancy

	// TIV is the total insured value (building + contents) in the
	// portfolio base currency.
	TIV float64

	// Deductible and Limit are the per-risk policy terms applied to
	// ground-up losses before they enter an ELT.
	Deductible float64
	Limit      float64
}

// Set is one exposure database: the insured portfolio of a single cedant,
// geographically clustered the way real books of business are.
type Set struct {
	ID        uint32
	Name      string
	Buildings []Building

	// Currency is the ISO-ish code of the set's native currency; the
	// financial terms on the derived ELT carry the FX rate back to the
	// portfolio base currency.
	Currency string
}

// TotalTIV returns the summed insured value of the set.
func (s *Set) TotalTIV() float64 {
	var t float64
	for i := range s.Buildings {
		t += s.Buildings[i].TIV
	}
	return t
}

// Config controls synthetic exposure generation.
type Config struct {
	Seed         uint64
	NumBuildings int
	Clusters     int     // population centres; default 8
	ClusterStd   float64 // km std-dev of buildings around a centre; default 40
	MeanTIV      float64 // default 2_000_000
	Currency     string  // default "USD"
	Name         string
}

func (c *Config) setDefaults() {
	if c.Clusters <= 0 {
		c.Clusters = 8
	}
	if c.ClusterStd <= 0 {
		c.ClusterStd = 40
	}
	if c.MeanTIV <= 0 {
		c.MeanTIV = 2e6
	}
	if c.Currency == "" {
		c.Currency = "USD"
	}
}

// ErrNoBuildings is returned when a set would be empty.
var ErrNoBuildings = errors.New("exposure: NumBuildings must be positive")

// Generate builds a synthetic exposure set, deterministic in Config.Seed.
// Buildings cluster around population centres, producing the spatial
// correlation that makes single events hit many risks at once.
func Generate(id uint32, cfg Config) (*Set, error) {
	cfg.setDefaults()
	if cfg.NumBuildings <= 0 {
		return nil, ErrNoBuildings
	}
	r := rng.At(cfg.Seed, 0xE590+uint64(id))

	centres := make([][2]float64, cfg.Clusters)
	for i := range centres {
		centres[i] = [2]float64{r.Range(50, 950), r.Range(50, 950)}
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("exposure-set-%d", id)
	}
	s := &Set{ID: id, Name: name, Currency: cfg.Currency,
		Buildings: make([]Building, cfg.NumBuildings)}
	for i := range s.Buildings {
		c := centres[r.Intn(len(centres))]
		tiv := stats.LogNormalMeanCV(r, cfg.MeanTIV, 1.8)
		// Deductible 0.5-5% of TIV; limit 60-100% of TIV.
		ded := tiv * r.Range(0.005, 0.05)
		lim := tiv * r.Range(0.6, 1.0)
		s.Buildings[i] = Building{
			ID:           uint32(i),
			X:            stats.TruncNormal(r, c[0], cfg.ClusterStd, 0, 1000),
			Y:            stats.TruncNormal(r, c[1], cfg.ClusterStd, 0, 1000),
			Construction: Construction(r.Intn(int(numConstructions))),
			Occupancy:    Occupancy(r.Intn(int(numOccupancies))),
			TIV:          tiv,
			Deductible:   ded,
			Limit:        lim,
		}
	}
	return s, nil
}
