package tenant

import (
	"strings"
	"testing"
	"time"
)

const sampleConfig = `{
  "tenants": [
    {"name": "acme", "key": "acme-secret-key-0001", "maxActive": 2, "ratePerSec": 2, "burst": 4},
    {"name": "zenith", "key": "zenith-secret-key-01"}
  ]
}`

func TestParseAndAuthenticate(t *testing.T) {
	r, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "acme" || got[1] != "zenith" {
		t.Fatalf("names: %v", got)
	}
	tn, ok := r.Authenticate("acme-secret-key-0001")
	if !ok || tn.Name != "acme" {
		t.Fatalf("valid key rejected: ok=%v tenant=%v", ok, tn)
	}
	for _, bad := range []string{"", "wrong", "acme-secret-key-0002", "acme-secret-key-000"} {
		if _, ok := r.Authenticate(bad); ok {
			t.Fatalf("key %q authenticated", bad)
		}
	}
	if tn, ok := r.Lookup("zenith"); !ok || tn.Name != "zenith" {
		t.Fatalf("lookup zenith: ok=%v", ok)
	}
	if _, ok := r.Lookup("nobody"); ok {
		t.Fatal("lookup of unknown tenant succeeded")
	}
}

func TestParseRejectsBadConfigs(t *testing.T) {
	for name, cfg := range map[string]string{
		"empty":     `{"tenants": []}`,
		"no-name":   `{"tenants": [{"key": "0123456789abcdef"}]}`,
		"short-key": `{"tenants": [{"name": "a", "key": "short"}]}`,
		"dup-name":  `{"tenants": [{"name": "a", "key": "0123456789abcdef"}, {"name": "a", "key": "fedcba9876543210"}]}`,
		"dup-key":   `{"tenants": [{"name": "a", "key": "0123456789abcdef"}, {"name": "b", "key": "0123456789abcdef"}]}`,
		"negative":  `{"tenants": [{"name": "a", "key": "0123456789abcdef", "maxActive": -1}]}`,
		"long-name": `{"tenants": [{"name": "` + strings.Repeat("x", 200) + `", "key": "0123456789abcdef"}]}`,
		"not-json":  `tenants: yaml`,
	} {
		if _, err := Parse([]byte(cfg)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// fakeClock drives a tenant's bucket deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func clockedTenant(t *testing.T, cfgJSON string) (*Tenant, *fakeClock) {
	t.Helper()
	r, err := Parse([]byte(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	tn := r.tenants[0]
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tn.now = func() time.Time { return clk.t }
	return tn, clk
}

func TestConcurrencyQuota(t *testing.T) {
	tn, _ := clockedTenant(t, `{"tenants":[{"name":"a","key":"0123456789abcdef","maxActive":2}]}`)
	if ok, _ := tn.Admit(); !ok {
		t.Fatal("first admit refused")
	}
	if ok, _ := tn.Admit(); !ok {
		t.Fatal("second admit refused")
	}
	ok, retry := tn.Admit()
	if ok {
		t.Fatal("third admit allowed past maxActive=2")
	}
	if retry <= 0 {
		t.Fatalf("refusal carries no Retry-After: %v", retry)
	}
	tn.Release()
	if ok, _ := tn.Admit(); !ok {
		t.Fatal("admit after release refused")
	}
	if got := tn.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
}

func TestTokenBucket(t *testing.T) {
	tn, clk := clockedTenant(t, `{"tenants":[{"name":"a","key":"0123456789abcdef","ratePerSec":2,"burst":3}]}`)
	// Burst admits back to back...
	for i := 0; i < 3; i++ {
		if ok, _ := tn.Admit(); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
		tn.Release()
	}
	// ...then the rate bites, with a sensible Retry-After.
	ok, retry := tn.Admit()
	if ok {
		t.Fatal("admit allowed with an empty bucket")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s", retry)
	}
	// Refill at 2/sec: after 1s, two more submissions fit.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Admit(); !ok {
			t.Fatalf("post-refill admit %d refused", i)
		}
		tn.Release()
	}
	if ok, _ := tn.Admit(); ok {
		t.Fatal("third post-refill admit allowed; refill over-credited")
	}
	// The bucket never exceeds burst no matter how long the idle gap.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := tn.Admit(); ok {
			admitted++
			tn.Release()
		}
	}
	if admitted != 3 {
		t.Fatalf("after a long idle %d admits landed, want the burst cap 3", admitted)
	}
}

// TestReacquireSkipsBucket pins the recovery contract: re-admitting an
// interrupted job consumes concurrency but no rate token.
func TestReacquireSkipsBucket(t *testing.T) {
	tn, _ := clockedTenant(t, `{"tenants":[{"name":"a","key":"0123456789abcdef","maxActive":3,"ratePerSec":1,"burst":1}]}`)
	tn.Reacquire()
	tn.Reacquire()
	if got := tn.Active(); got != 2 {
		t.Fatalf("active after reacquire = %d, want 2", got)
	}
	// The bucket is untouched: one burst token is still there.
	if ok, _ := tn.Admit(); !ok {
		t.Fatal("admit refused despite full bucket")
	}
}

func TestUnlimitedTenant(t *testing.T) {
	tn, _ := clockedTenant(t, `{"tenants":[{"name":"a","key":"0123456789abcdef"}]}`)
	for i := 0; i < 100; i++ {
		if ok, _ := tn.Admit(); !ok {
			t.Fatalf("unlimited tenant refused at %d", i)
		}
	}
}
