// Package tenant is ared's multi-tenancy layer: API-key
// authentication, per-tenant admission quotas, and token-bucket rate
// limits, loaded from a JSON config file at daemon start.
//
// The trust model is deliberately small. Tenants are a flat list of
// (name, key, quota) records — no users, roles or grants — because the
// service's resources are jobs, and the only questions the API needs
// answered are "whose key is this" and "may they submit another job
// right now". Keys are compared in constant time against SHA-256
// digests, and the comparison loop never exits early, so neither key
// length nor which tenant matched leaks through timing.
//
// Quotas are two independent brakes with different failure smells:
//
//   - MaxActive caps a tenant's open jobs (queued + running). It is the
//     isolation quota — one tenant flooding the queue exhausts its own
//     allowance, not the shared QueueDepth, so another tenant's
//     interactive submission still admits instantly.
//   - RatePerSec + Burst is a token bucket over submissions. It is the
//     abuse brake — sustained submit storms are refused with a computed
//     Retry-After even when each job finishes quickly.
//
// Both refusals surface as HTTP 429 with a Retry-After header; the
// server enforces them as middleware ahead of handleSubmit.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"
)

// configTenant is one entry in the -tenants config file.
type configTenant struct {
	// Name labels the tenant in job ownership, metrics and logs.
	Name string `json:"name"`
	// Key is the tenant's API key, presented by clients as
	// `Authorization: Bearer <key>` or `X-API-Key: <key>`.
	Key string `json:"key"`
	// MaxActive caps the tenant's open (queued + running) jobs;
	// 0 means unlimited.
	MaxActive int `json:"maxActive"`
	// RatePerSec refills the tenant's submission token bucket;
	// 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"ratePerSec"`
	// Burst is the bucket capacity — how many submissions may land
	// back-to-back before the rate applies. 0 with a rate selects
	// max(1, RatePerSec).
	Burst float64 `json:"burst"`
}

type configFile struct {
	Tenants []configTenant `json:"tenants"`
}

// Tenant is one authenticated principal and its live quota state.
type Tenant struct {
	Name string

	keyDigest [sha256.Size]byte
	maxActive int
	rate      float64
	burst     float64
	now       func() time.Time // injectable for deterministic bucket tests

	mu     sync.Mutex
	active int
	tokens float64
	last   time.Time
}

// Registry holds every configured tenant. Immutable after load; the
// per-tenant quota state inside is concurrency-safe.
type Registry struct {
	tenants []*Tenant
	byName  map[string]*Tenant
}

// maxNameLen bounds tenant names so they fit journal records and
// metric labels without escaping games.
const maxNameLen = 128

// Load reads and validates a tenants config file.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	r, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Parse builds a registry from config JSON.
func Parse(data []byte) (*Registry, error) {
	var cfg configFile
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("no tenants configured")
	}
	r := &Registry{byName: make(map[string]*Tenant, len(cfg.Tenants))}
	seenKeys := make(map[[sha256.Size]byte]string, len(cfg.Tenants))
	for i, ct := range cfg.Tenants {
		if ct.Name == "" {
			return nil, fmt.Errorf("tenant %d: missing name", i)
		}
		if len(ct.Name) > maxNameLen {
			return nil, fmt.Errorf("tenant %q: name longer than %d bytes", ct.Name, maxNameLen)
		}
		if len(ct.Key) < 16 {
			return nil, fmt.Errorf("tenant %q: key shorter than 16 bytes", ct.Name)
		}
		if _, dup := r.byName[ct.Name]; dup {
			return nil, fmt.Errorf("tenant %q: duplicate name", ct.Name)
		}
		if ct.MaxActive < 0 || ct.RatePerSec < 0 || ct.Burst < 0 ||
			math.IsNaN(ct.RatePerSec) || math.IsNaN(ct.Burst) {
			return nil, fmt.Errorf("tenant %q: negative quota", ct.Name)
		}
		burst := ct.Burst
		if ct.RatePerSec > 0 && burst <= 0 {
			burst = math.Max(1, ct.RatePerSec)
		}
		t := &Tenant{
			Name:      ct.Name,
			keyDigest: sha256.Sum256([]byte(ct.Key)),
			maxActive: ct.MaxActive,
			rate:      ct.RatePerSec,
			burst:     burst,
			tokens:    burst,
			now:       time.Now,
		}
		if prev, dup := seenKeys[t.keyDigest]; dup {
			return nil, fmt.Errorf("tenant %q: key duplicates tenant %q", ct.Name, prev)
		}
		seenKeys[t.keyDigest] = ct.Name
		r.tenants = append(r.tenants, t)
		r.byName[ct.Name] = t
	}
	return r, nil
}

// Authenticate resolves an API key to its tenant. Every configured
// digest is compared — no early exit — so the work done is independent
// of whether (and where) the key matched.
func (r *Registry) Authenticate(key string) (*Tenant, bool) {
	if key == "" {
		return nil, false
	}
	d := sha256.Sum256([]byte(key))
	var found *Tenant
	for _, t := range r.tenants {
		if subtle.ConstantTimeCompare(d[:], t.keyDigest[:]) == 1 {
			found = t
		}
	}
	return found, found != nil
}

// Lookup finds a tenant by name — recovery uses it to re-attach
// journaled jobs to their owners.
func (r *Registry) Lookup(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Names returns every tenant name, in config order (metrics iterate
// it for stable label ordering).
func (r *Registry) Names() []string {
	out := make([]string, len(r.tenants))
	for i, t := range r.tenants {
		out[i] = t.Name
	}
	return out
}

// Admit reserves one job admission: a concurrency slot and a rate
// token. When refused, retryAfter is how long the client should wait
// before trying again (the Retry-After header). A granted admission
// holds the slot until Release.
func (t *Tenant) Admit() (ok bool, retryAfter time.Duration) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refillLocked(now)
	if t.maxActive > 0 && t.active >= t.maxActive {
		// The slot frees when one of the tenant's own jobs finishes;
		// there is no schedule to compute, so advise a short poll.
		return false, time.Second
	}
	if t.rate > 0 && t.tokens < 1 {
		need := (1 - t.tokens) / t.rate
		d := time.Duration(math.Ceil(need)) * time.Second
		if d < time.Second {
			d = time.Second
		}
		return false, d
	}
	if t.rate > 0 {
		t.tokens--
	}
	t.active++
	return true, 0
}

// Release frees one admission slot; the scheduler calls it exactly
// once per admitted job at its terminal transition.
func (t *Tenant) Release() {
	t.mu.Lock()
	if t.active > 0 {
		t.active--
	}
	t.mu.Unlock()
}

// Reacquire takes an admission slot without spending a rate token.
// Restart recovery uses it: an interrupted job was already admitted
// (and journaled) in a previous life, so re-running it must not count
// against the bucket — but it does occupy concurrency again.
func (t *Tenant) Reacquire() {
	t.mu.Lock()
	t.active++
	t.mu.Unlock()
}

// Active reports the tenant's open-job count (metrics gauge).
func (t *Tenant) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// refillLocked advances the token bucket to now. Caller holds t.mu.
func (t *Tenant) refillLocked(now time.Time) {
	if t.rate <= 0 {
		return
	}
	if !t.last.IsZero() {
		if dt := now.Sub(t.last).Seconds(); dt > 0 {
			t.tokens = math.Min(t.burst, t.tokens+dt*t.rate)
		}
	}
	t.last = now
}
