package chaostest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"github.com/ralab/are/internal/spec"
)

// jobGen produces the chaos corpus: randomized but always-valid job
// specs, rendered to canonical JSON (struct-ordered json.Marshal), so a
// spec in the trace is exactly the bytes the executor submits. Every
// generated spec round-trips spec.ParseJob — the generator's unit test
// pins that, and the sweep-variant edge cases the corpus skirts
// (0/64/65 variants, duplicate overrides) are pinned as table-driven
// tests in internal/spec.
type jobGen struct {
	rng       *rand.Rand
	maxTrials int
}

func newJobGen(rng *rand.Rand, maxTrials int) *jobGen {
	return &jobGen{rng: rng, maxTrials: maxTrials}
}

// lookups a chaos job may request. "combined" is excluded from sweep
// specs that scale participation (the service rejects that pairing by
// design), which the sweep generator handles by only overriding layer
// terms under "combined".
var chaosLookups = []string{"direct", "sorted", "hash", "cuckoo", "combined"}

func (g *jobGen) portfolio() *spec.File {
	r := g.rng
	catalog := []int{8000, 15000}[r.Intn(2)]
	nELT := 1 + r.Intn(3)
	f := &spec.File{CatalogSize: catalog}
	for i := 0; i < nELT; i++ {
		f.ELTs = append(f.ELTs, spec.ELTSpec{
			ID: uint32(i + 1),
			Generate: &spec.GenerateSpec{
				Seed:       r.Uint64() % 1_000_000,
				NumRecords: 300 + r.Intn(900),
			},
		})
	}
	nLayer := 1 + r.Intn(2)
	for i := 0; i < nLayer; i++ {
		var covers []uint32
		for id := 1; id <= nELT; id++ {
			if r.Intn(2) == 0 {
				covers = append(covers, uint32(id))
			}
		}
		if len(covers) == 0 {
			covers = []uint32{uint32(1 + r.Intn(nELT))}
		}
		terms := &spec.LayerTermsSpec{
			OccRetention: float64(10+r.Intn(190)) * 1e3,
		}
		if r.Intn(4) > 0 {
			lim := spec.Limit(float64(1+r.Intn(5)) * 1e6)
			terms.OccLimit = &lim
		}
		if r.Intn(3) == 0 {
			terms.AggRetention = float64(r.Intn(200)) * 1e3
		}
		f.Layers = append(f.Layers, spec.LayerSpec{
			ID:    uint32(i + 1),
			Name:  fmt.Sprintf("chaos-l%d", i+1),
			ELTs:  covers,
			Terms: terms,
		})
	}
	return f
}

func (g *jobGen) base(quoted bool) *spec.Job {
	r := g.rng
	j := &spec.Job{
		Portfolio: g.portfolio(),
		YET: spec.YETSpec{
			Seed:       r.Uint64() % 1_000_000,
			Trials:     200 + r.Intn(g.maxTrials-199),
			MeanEvents: float64(10 + r.Intn(30)),
		},
		// Workers pinned to 1: with a sequential pipeline every sink
		// state is a deterministic function of the spec, which is what
		// lets the oracle demand bitwise-identical results end to end.
		Workers: 1,
		Lookup:  chaosLookups[r.Intn(len(chaosLookups))],
	}
	if quoted {
		j.Metrics.Quotes = true
	}
	switch r.Intn(3) {
	case 0:
		j.Metrics.ReturnPeriods = []float64{10, 25, 50, 100}
	case 1:
		j.Metrics.ReturnPeriods = []float64{5, 50, 500}
	}
	g.uncertainty(j)
	return j
}

// uncertainty decorates part of the corpus with secondary uncertainty.
// A third of jobs become sampled: every generated table gains a sigma
// and the job carries a sampled uncertainty block. The service rejects
// sampled jobs under lookup=combined (the fold bakes mean losses into
// one table), so those re-roll onto a point-lookup kind — chaos submits
// only specs the service accepts. A further sixth keep the sigma tables
// but price in explicit mean mode, which is legal under every lookup
// and must behave exactly like the omitted block.
func (g *jobGen) uncertainty(j *spec.Job) {
	r := g.rng
	switch r.Intn(6) {
	case 0, 1:
		for i := range j.Portfolio.ELTs {
			j.Portfolio.ELTs[i].Generate.Sigma = 0.5 + 0.1*float64(r.Intn(9))
		}
		j.Uncertainty = &spec.UncertaintySpec{Mode: "sampled", Seed: r.Uint64() % 1000}
		if j.Lookup == "combined" {
			j.Lookup = chaosLookups[r.Intn(len(chaosLookups)-1)]
		}
	case 2:
		for i := range j.Portfolio.ELTs {
			j.Portfolio.ELTs[i].Generate.Sigma = 0.4 + 0.1*float64(r.Intn(8))
		}
		j.Uncertainty = &spec.UncertaintySpec{Mode: "mean"}
	}
}

// render validates and marshals; an invalid generated spec is a harness
// bug, surfaced as a panic at generation time (long before processes
// spawn).
func (g *jobGen) render(j *spec.Job) string {
	if err := j.Validate(); err != nil {
		panic(fmt.Sprintf("chaostest: generated invalid job spec: %v", err))
	}
	b, err := json.Marshal(j)
	if err != nil {
		panic(fmt.Sprintf("chaostest: marshal job spec: %v", err))
	}
	if _, err := spec.ParseJob(strings.NewReader(string(b))); err != nil {
		panic(fmt.Sprintf("chaostest: generated spec does not round-trip ParseJob: %v", err))
	}
	return string(b)
}

// plain produces a plain (optionally quoted) job spec.
func (g *jobGen) plain(quoted bool) string {
	return g.render(g.base(quoted))
}

// sweep produces a scenario-sweep job spec: a base portfolio plus 2-5
// variants mixing layer-term overrides and participation scales.
func (g *jobGen) sweep() string {
	r := g.rng
	j := g.base(r.Intn(2) == 0)
	n := 2 + r.Intn(4)
	sw := &spec.SweepSpec{}
	sw.Variants = append(sw.Variants, spec.VariantSpec{Name: "base"})
	for i := 1; i < n; i++ {
		v := spec.VariantSpec{Name: fmt.Sprintf("v%d", i)}
		switch r.Intn(3) {
		case 0:
			ret := float64(50+r.Intn(300)) * 1e3
			v.OccRetention = &ret
		case 1:
			lim := spec.Limit(float64(1+r.Intn(3)) * 1e6)
			v.OccLimit = &lim
		default:
			if j.Lookup == "combined" {
				// Share scaling under the folded representation is
				// rejected by the service; override a retention instead.
				ret := float64(25+r.Intn(100)) * 1e3
				v.OccRetention = &ret
			} else {
				v.ParticipationScale = 0.4 + 0.1*float64(r.Intn(6))
			}
		}
		sw.Variants = append(sw.Variants, v)
	}
	j.Sweep = sw
	return g.render(j)
}
