package chaostest

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ralab/are/internal/server"
	"github.com/ralab/are/internal/spec"
)

// jobRecord is the harness's ledger entry for one submitted job — the
// ground truth the invariants are checked against.
type jobRecord struct {
	ordinal int
	spec    string
	target  string // "coordinator" or "worker<i>"

	workerIdx   int // -1 for coordinator jobs
	incarnation int // worker process incarnation at submit (worker jobs)
	epoch       int // coordinator epoch at submit (coordinator jobs)

	id    string // server-assigned job ID; "" when the submit was refused
	state string // last observed state
	// terminal latches the first observed terminal state; any later
	// observation of a different state is a double-completion violation.
	terminal bool
	// offline means the process instance holding this job's state is
	// gone: no further HTTP for it, its captured result (if any) stands.
	offline bool
	// lost classifies a documented-allowed disappearance:
	// "lost-to-restart" (coordinator restart wiped the in-memory store),
	// "lost-to-kill" (the worker holding it was SIGKILLed) or
	// "rejected" (503 at submit). A job that vanishes any other way
	// fails the run.
	lost string

	resultBytes []byte
	result      *server.JobResult
	verified    bool
}

// Report is one chaos run's tally, returned to the test for its
// acceptance assertions.
type Report struct {
	Script *Script

	Submitted, Rejected              int
	Done, Failed, Cancelled          int
	LostToRestart, LostToKill        int
	VerifiedSingleNode, VerifiedDist int
	WorkerKills, CoordinatorRestarts int
	SettlesPassed                    int
}

// Logf matches testing.T.Logf; the harness narrates through it.
type Logf func(format string, args ...any)

type workerSlot struct {
	idx         int
	proxy       *Proxy
	proc        *Proc // nil while killed
	incarnation int
	spillDir    string
	cl          *client
}

// Cluster drives one chaos run end to end.
type Cluster struct {
	cfg    Config
	script *Script
	logf   Logf
	dir    string
	bin    string

	coordAddr string // stable for the whole run (SO_REUSEADDR rebinds it)
	coordProc *Proc
	coordCl   *client
	epoch     int

	workers []*workerSlot
	oracle  *oracle
	records []*jobRecord
	exec    *os.File // execution log: every action and its outcome
}

// Run executes one full chaos run: generate the script, boot the
// cluster, drive every action, settle, verify, tear down. The returned
// Report is valid even on error; the action trace and all process logs
// are in Report-independent files under the artifact directory (logged
// through logf).
func Run(cfg Config, logf Logf) (*Report, error) {
	cfg.setDefaults()
	script := Generate(cfg)
	rep := &Report{Script: script, WorkerKills: script.Kills, CoordinatorRestarts: script.CoordRestarts}

	dir := cfg.ArtifactDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "chaos-"); err != nil {
			return rep, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return rep, err
	}
	logf("chaos: seed=%d artifacts=%s", cfg.Seed, dir)
	if err := os.WriteFile(filepath.Join(dir, "trace.txt"), []byte(script.Trace()), 0o644); err != nil {
		return rep, err
	}

	bin, err := BuildAred(dir)
	if err != nil {
		return rep, err
	}
	c := &Cluster{cfg: cfg, script: script, logf: logf, dir: dir, bin: bin, oracle: newOracle()}
	c.exec, err = os.Create(filepath.Join(dir, "exec.log"))
	if err != nil {
		return rep, err
	}
	defer c.exec.Close()

	if err := c.boot(); err != nil {
		c.emergencyTeardown()
		return rep, err
	}
	runErr := c.execute(rep)
	downErr := c.teardown(runErr != nil)
	c.tally(rep)
	if runErr != nil {
		return rep, runErr
	}
	if downErr != nil {
		return rep, downErr
	}
	if rep.Done < cfg.MinDone {
		return rep, fmt.Errorf("chaos: only %d jobs completed, want >= %d — the run was not a meaningful exercise", rep.Done, cfg.MinDone)
	}
	return rep, nil
}

func (c *Cluster) execlog(format string, args ...any) {
	fmt.Fprintf(c.exec, format+"\n", args...)
}

// boot starts the coordinator and every worker slot.
func (c *Cluster) boot() error {
	p, err := c.startCoordinator("127.0.0.1:0")
	if err != nil {
		return err
	}
	c.coordProc = p
	c.coordAddr = p.Addr // stable: restarts rebind this exact port
	c.coordCl = newClient("http://" + c.coordAddr)

	for i := 0; i < c.cfg.Workers; i++ {
		proxy, err := NewProxy()
		if err != nil {
			return err
		}
		w := &workerSlot{
			idx:      i,
			proxy:    proxy,
			spillDir: filepath.Join(c.dir, fmt.Sprintf("spill-w%d", i)),
		}
		c.workers = append(c.workers, w)
		if err := c.startWorker(w); err != nil {
			return err
		}
	}
	// The cluster is usable once every worker's registration landed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cs, err := c.coordCl.cluster()
		if err == nil && cs.Alive >= c.cfg.Workers {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster never formed: %d alive, err=%v", cs.Alive, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.execlog("boot: coordinator %s, %d workers registered", c.coordAddr, c.cfg.Workers)
	return nil
}

// Cluster timing: tight leases and timeouts so faults surface in test
// time, not production time. A 2s worker lease (heartbeats every ~667ms)
// and a 3s shard round-trip bound mean a blackholed worker costs one
// 3s timeout before its shard requeues elsewhere.
func (c *Cluster) startCoordinator(addr string) (*Proc, error) {
	args := []string{
		"-addr", addr, "-role", "coordinator",
		"-shard-trials", "150",
		"-worker-ttl", "2s",
		"-shard-timeout", "3s",
		"-job-workers", "4",
		"-grace", "5s",
	}
	if c.cfg.Durable {
		// One journal directory across every epoch: the restarted
		// process must recover its predecessor's job table from it.
		args = append(args, "-data-dir", filepath.Join(c.dir, "coord-data"))
	}
	p, err := StartProc(c.bin, c.dir, fmt.Sprintf("coordinator-e%d", c.epoch), args...)
	if err != nil {
		return nil, err
	}
	if _, err := p.WaitReady(20 * time.Second); err != nil {
		return nil, err
	}
	return p, nil
}

func (c *Cluster) startWorker(w *workerSlot) error {
	name := fmt.Sprintf("worker%d-i%d", w.idx, w.incarnation)
	p, err := StartProc(c.bin, c.dir, name,
		"-addr", "127.0.0.1:0", "-role", "worker",
		"-coordinator", "http://"+c.coordAddr,
		"-advertise", w.proxy.URL(),
		"-job-workers", "2", "-engine-workers", "1",
		// Wide enough for burst submissions to queue up and fuse; the
		// burst action exists to drive the admission planner under
		// chaos.
		"-fuse-wait", "5ms",
		"-spill-dir", w.spillDir,
		"-grace", "5s",
	)
	if err != nil {
		return err
	}
	if _, err := p.WaitReady(20 * time.Second); err != nil {
		return err
	}
	w.proc = p
	w.proxy.SetTarget(p.Addr)
	w.cl = newClient("http://" + p.Addr)
	return nil
}

// execute drives the script. Any invariant violation aborts
// immediately — the trace and exec log say exactly what was happening.
func (c *Cluster) execute(rep *Report) error {
	for _, a := range c.script.Actions {
		if err := c.step(a, rep); err != nil {
			c.execlog("%s -> FAIL: %v", a.String(), err)
			return fmt.Errorf("chaos: action #%04d %s: %w (trace: %s)", a.Seq, a.Kind, err, filepath.Join(c.dir, "trace.txt"))
		}
		// A breath between actions lets submissions interleave with
		// faults instead of the script degenerating into phases.
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

func (c *Cluster) step(a Action, rep *Report) error {
	switch a.Kind {
	case ActSubmit:
		if a.Final {
			// Restore-phase submission: the script guarantees the cluster
			// was just healed and repopulated, but registration is the
			// workers' own asynchronous loop — give the registry a moment
			// to reflect reality before the last round of real traffic.
			// Mid-chaos submits get no such courtesy on purpose.
			if err := c.awaitAliveWorkers(1, 15*time.Second); err != nil {
				return err
			}
		}
		return c.doSubmit(a, c.coordCl, "coordinator", -1)
	case ActSubmitWorker:
		w := c.workers[a.Worker]
		if w.proc == nil {
			return fmt.Errorf("script targets dead worker %d (generator/executor state diverged)", a.Worker)
		}
		return c.doSubmit(a, w.cl, fmt.Sprintf("worker%d", a.Worker), a.Worker)
	case ActBurst:
		w := c.workers[a.Worker]
		if w.proc == nil {
			return fmt.Errorf("script targets dead worker %d (generator/executor state diverged)", a.Worker)
		}
		// Count identical submissions, back to back with no breath
		// between them, so they land inside the worker's fuse window.
		// Each gets its own consecutive ordinal and its own record:
		// from the invariant checker's point of view a burst is just
		// Count independent jobs.
		for i := 0; i < a.Count; i++ {
			sub := a
			sub.Job = a.Job + i
			if err := c.doSubmit(sub, w.cl, fmt.Sprintf("worker%d", a.Worker), a.Worker); err != nil {
				return err
			}
		}
		return nil
	case ActPoll:
		return c.pollRecord(c.records[a.Job])
	case ActCancel:
		return c.doCancel(c.records[a.Job])
	case ActKillWorker:
		return c.doKillWorker(a.Worker)
	case ActRestartWorker:
		w := c.workers[a.Worker]
		if w.proc != nil {
			return fmt.Errorf("script restarts live worker %d", a.Worker)
		}
		w.incarnation++
		if err := c.startWorker(w); err != nil {
			return err
		}
		c.execlog("%s -> worker%d up at %s (advertise %s)", a.String(), a.Worker, w.proc.Addr, w.proxy.URL())
		return nil
	case ActRestartCoordinator:
		return c.doRestartCoordinator()
	case ActPartition:
		c.workers[a.Worker].proxy.Partition()
		c.execlog("%s", a.String())
		return nil
	case ActHeal:
		c.workers[a.Worker].proxy.Heal()
		c.execlog("%s", a.String())
		return nil
	case ActSlowWorker:
		c.workers[a.Worker].proxy.SetDelay(a.Delay)
		c.execlog("%s", a.String())
		return nil
	case ActSkewHeartbeat:
		return c.doSkewHeartbeat(a.Worker)
	case ActSettle:
		if err := c.settle(); err != nil {
			return err
		}
		rep.SettlesPassed++
		return nil
	}
	return fmt.Errorf("unknown action kind %q", a.Kind)
}

// awaitAliveWorkers blocks until the coordinator's registry shows at
// least n live workers.
func (c *Cluster) awaitAliveWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		cs, err := c.coordCl.cluster()
		if err == nil && cs.Alive >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("registry shows %d live workers after %v (want >= %d), err=%v", cs.Alive, timeout, n, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (c *Cluster) doSubmit(a Action, cl *client, target string, workerIdx int) error {
	rec := &jobRecord{
		ordinal:   a.Job,
		spec:      a.Spec,
		target:    target,
		workerIdx: workerIdx,
		epoch:     c.epoch,
	}
	if workerIdx >= 0 {
		rec.incarnation = c.workers[workerIdx].incarnation
	}
	if len(c.records) != a.Job {
		return fmt.Errorf("job ordinal %d but %d records exist", a.Job, len(c.records))
	}
	c.records = append(c.records, rec)
	st, err := cl.submit(a.Spec)
	if err != nil {
		if errCode(err) == 503 {
			// Queue full or draining — a documented refusal, not a loss.
			rec.lost = "rejected"
			rec.offline = true
			c.execlog("%s -> rejected (503)", a.String())
			return nil
		}
		return fmt.Errorf("submit to %s: %w", target, err)
	}
	rec.id = st.ID
	rec.state = st.State
	c.execlog("#%04d %s j%d -> %s on %s (%s)", a.Seq, a.Kind, a.Job, st.ID, target, st.State)
	return nil
}

// pollRecord observes one job and enforces the lifecycle invariants on
// what it sees.
func (c *Cluster) pollRecord(rec *jobRecord) error {
	if rec == nil || rec.id == "" || rec.offline || rec.lost != "" {
		return nil
	}
	cl := c.coordCl
	if rec.workerIdx >= 0 {
		w := c.workers[rec.workerIdx]
		if w.proc == nil || rec.incarnation != w.incarnation {
			// The process that owned this job is gone; kill-time
			// classification should have caught it.
			return fmt.Errorf("job %s's worker incarnation vanished without classification", rec.id)
		}
		cl = w.cl
	}
	st, err := cl.status(rec.id)
	if err != nil {
		return fmt.Errorf("poll %s on %s: %w", rec.id, rec.target, err)
	}
	return c.observe(rec, st.State, st.Error, cl)
}

// observe folds one observed state into the record, enforcing terminal
// immutability and result byte-stability.
func (c *Cluster) observe(rec *jobRecord, state, errMsg string, cl *client) error {
	if rec.terminal {
		if state != rec.state {
			return fmt.Errorf("job %s changed terminal state %s -> %s (double completion)", rec.id, rec.state, state)
		}
		if state == string(server.JobDone) && rec.resultBytes != nil {
			raw, _, err := cl.result(rec.id)
			if err != nil {
				return fmt.Errorf("re-fetch result %s: %w", rec.id, err)
			}
			if !bytes.Equal(raw, rec.resultBytes) {
				return fmt.Errorf("job %s's result bytes changed between fetches", rec.id)
			}
		}
		return nil
	}
	rec.state = state
	switch state {
	case string(server.JobDone):
		raw, res, err := cl.result(rec.id)
		if err != nil {
			return fmt.Errorf("fetch result %s: %w", rec.id, err)
		}
		rec.terminal = true
		rec.resultBytes, rec.result = raw, res
		c.execlog("observe: %s done on %s (%d bytes)", rec.id, rec.target, len(raw))
	case string(server.JobFailed):
		rec.terminal = true
		c.execlog("observe: %s failed on %s: %s", rec.id, rec.target, errMsg)
		if rec.workerIdx >= 0 {
			// A worker-direct job never crosses the network the chaos
			// touches: its proxy, the coordinator and the other workers
			// are irrelevant to it. The only thing that can fail it is
			// the engine itself — which is a real bug, not chaos.
			return fmt.Errorf("single-node job %s failed (%s) — no cluster fault can explain a worker-direct failure", rec.id, errMsg)
		}
	case string(server.JobCancelled):
		rec.terminal = true
		c.execlog("observe: %s %s on %s", rec.id, state, rec.target)
	}
	return nil
}

func (c *Cluster) doCancel(rec *jobRecord) error {
	if rec == nil || rec.id == "" || rec.offline || rec.lost != "" || rec.terminal {
		return nil
	}
	cl := c.coordCl
	if rec.workerIdx >= 0 {
		cl = c.workers[rec.workerIdx].cl
	}
	st, err := cl.cancel(rec.id)
	if err != nil {
		if errCode(err) == 409 { // finished in the race — the next poll observes it
			return nil
		}
		return fmt.Errorf("cancel %s: %w", rec.id, err)
	}
	c.execlog("cancel: %s -> %s", rec.id, st.State)
	return c.observe(rec, st.State, st.Error, cl)
}

// doKillWorker SIGKILLs the worker process. Every non-terminal job that
// lived in that process is now legitimately lost; terminal ones keep
// their captured results but go offline.
func (c *Cluster) doKillWorker(idx int) error {
	w := c.workers[idx]
	if w.proc == nil {
		return fmt.Errorf("script kills dead worker %d", idx)
	}
	w.proc.Kill()
	w.proc = nil
	w.proxy.severConns()
	for _, rec := range c.records {
		if rec.workerIdx != idx || rec.incarnation != w.incarnation || rec.offline || rec.lost != "" {
			continue
		}
		rec.offline = true
		if !rec.terminal {
			rec.lost = "lost-to-kill"
			c.execlog("kill worker%d: %s lost-to-kill (was %s)", idx, rec.id, rec.state)
		}
	}
	c.execlog("kill: worker%d (incarnation %d) SIGKILLed", idx, w.incarnation)
	return nil
}

// doRestartCoordinator SIGKILLs the coordinator and boots a fresh one
// on the same port. With the default in-memory job table every open
// coordinator job is lost-to-restart and job IDs restart from
// j-000001, which is why records carry an epoch. In durable mode
// nothing may be lost: the new process recovers the journal, so every
// record stays live — and immediately after restart each pre-kill job
// must still exist, or the run fails on the spot.
func (c *Cluster) doRestartCoordinator() error {
	c.coordProc.Kill()
	if !c.cfg.Durable {
		for _, rec := range c.records {
			if rec.workerIdx >= 0 || rec.epoch != c.epoch || rec.offline || rec.lost != "" {
				continue
			}
			rec.offline = true
			if !rec.terminal {
				rec.lost = "lost-to-restart"
				c.execlog("coordinator restart: %s lost-to-restart (was %s)", rec.id, rec.state)
			}
		}
	}
	c.epoch++
	p, err := c.startCoordinator(c.coordAddr)
	if err != nil {
		return fmt.Errorf("coordinator restart on %s: %w", c.coordAddr, err)
	}
	c.coordProc = p
	c.execlog("restart: coordinator epoch %d up on %s", c.epoch, c.coordAddr)
	if c.cfg.Durable {
		// Recovery sweep: every coordinator job submitted before the
		// kill must have survived into this epoch. Terminal ones get
		// their bytes re-checked (observe re-fetches done results);
		// open ones must at least still be known — their re-run is
		// verified at the next settle like any other completion.
		for _, rec := range c.records {
			if rec.workerIdx >= 0 || rec.id == "" || rec.offline || rec.lost != "" {
				continue
			}
			st, err := c.coordCl.status(rec.id)
			if err != nil {
				return fmt.Errorf("durable restart lost job %s (was %s): %w", rec.id, rec.state, err)
			}
			if err := c.observe(rec, st.State, st.Error, c.coordCl); err != nil {
				return fmt.Errorf("durable restart, job %s: %w", rec.id, err)
			}
		}
		c.execlog("restart: durable recovery sweep passed (epoch %d)", c.epoch)
	}
	return nil
}

// doSkewHeartbeat spoofs a heartbeat for a dead worker's registry
// entry — a clock-skewed node vouching for a corpse. The coordinator
// keeps dispatching to it and must absorb the failures via requeue.
func (c *Cluster) doSkewHeartbeat(idx int) error {
	w := c.workers[idx]
	cs, err := c.coordCl.cluster()
	if err != nil {
		return fmt.Errorf("cluster status for skew: %w", err)
	}
	for _, ws := range cs.Workers {
		if ws.URL == w.proxy.URL() {
			if err := c.coordCl.heartbeat(ws.ID); err != nil {
				// 404: the restarted coordinator never knew this corpse.
				if errCode(err) == 404 {
					c.execlog("skew: worker%d unknown to coordinator (fresh epoch)", idx)
					return nil
				}
				return fmt.Errorf("spoof heartbeat %s: %w", ws.ID, err)
			}
			c.execlog("skew: spoofed heartbeat for dead worker%d (%s)", idx, ws.ID)
			return nil
		}
	}
	c.execlog("skew: worker%d not in registry", idx)
	return nil
}

// settle is the quiescent point: heal the network, wait for every open
// job to reach a terminal state, then hold every completed job to the
// oracle.
func (c *Cluster) settle() error {
	for _, w := range c.workers {
		w.proxy.Heal()
	}
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	for {
		open := 0
		for _, rec := range c.records {
			if rec.id == "" || rec.terminal || rec.offline || rec.lost != "" {
				continue
			}
			if err := c.pollRecord(rec); err != nil {
				return err
			}
			if !rec.terminal {
				open++
			}
		}
		if open == 0 {
			break
		}
		if time.Now().After(deadline) {
			var stuck []string
			for _, rec := range c.records {
				if rec.id != "" && !rec.terminal && !rec.offline && rec.lost == "" {
					stuck = append(stuck, fmt.Sprintf("%s on %s (%s)", rec.id, rec.target, rec.state))
				}
			}
			return fmt.Errorf("settle: %d jobs never reached a terminal state within %v: %s",
				len(stuck), c.cfg.SettleTimeout, strings.Join(stuck, ", "))
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Verify every done job exactly once, and re-fetch to pin byte
	// stability while its process is still up.
	for _, rec := range c.records {
		if !rec.terminal || rec.state != string(server.JobDone) || rec.verified {
			continue
		}
		if !rec.offline {
			cl := c.coordCl
			if rec.workerIdx >= 0 {
				cl = c.workers[rec.workerIdx].cl
			}
			if err := c.observe(rec, rec.state, "", cl); err != nil {
				return err
			}
		}
		var err error
		if rec.workerIdx >= 0 {
			err = c.oracle.verifySingleNode(rec.spec, rec.result)
		} else {
			err = c.oracle.verifyDistributed(rec.spec, rec.result)
		}
		if err != nil {
			return fmt.Errorf("job %s (%s, spec %s): %w", rec.id, rec.target, rec.spec, err)
		}
		rec.verified = true
		c.execlog("verified: %s against oracle", rec.id)
	}
	c.execlog("settle: all jobs terminal, %d records", len(c.records))
	return nil
}

// tally fills the report from the ledger.
func (c *Cluster) tally(rep *Report) {
	for _, rec := range c.records {
		rep.Submitted++
		switch rec.lost {
		case "rejected":
			rep.Rejected++
			continue
		case "lost-to-restart":
			rep.LostToRestart++
			continue
		case "lost-to-kill":
			rep.LostToKill++
			continue
		}
		switch rec.state {
		case string(server.JobDone):
			rep.Done++
			if rec.verified {
				if rec.workerIdx >= 0 {
					rep.VerifiedSingleNode++
				} else {
					rep.VerifiedDist++
				}
			}
		case string(server.JobFailed):
			rep.Failed++
		case string(server.JobCancelled):
			rep.Cancelled++
		}
	}
}

// teardown shuts the cluster down and asserts the exit contract: every
// surviving process drains and exits zero on SIGTERM, and every port
// the cluster used rebinds cleanly afterwards (nothing leaked). When
// the run already failed, teardown still reaps everything but reports
// only the run's error.
func (c *Cluster) teardown(alreadyFailed bool) error {
	var errs []string
	addrs := []string{c.coordAddr}
	for _, w := range c.workers {
		if w.proc != nil {
			addrs = append(addrs, w.proc.Addr)
			if err := w.proc.Stop(15 * time.Second); err != nil {
				errs = append(errs, err.Error())
			}
			w.proc = nil
		}
	}
	if c.coordProc != nil {
		if err := c.coordProc.Stop(15 * time.Second); err != nil {
			errs = append(errs, err.Error())
		}
		c.coordProc = nil
	}
	for _, w := range c.workers {
		addrs = append(addrs, w.proxy.Addr())
		w.proxy.Close()
	}
	for _, addr := range addrs {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			errs = append(errs, fmt.Sprintf("port leaked: %s does not rebind: %v", addr, err))
			continue
		}
		ln.Close()
	}
	if len(errs) > 0 && !alreadyFailed {
		return fmt.Errorf("chaos teardown: %s", strings.Join(errs, "; "))
	}
	if len(errs) > 0 {
		c.logf("chaos: teardown issues after failed run: %s", strings.Join(errs, "; "))
	}
	return nil
}

// emergencyTeardown reaps whatever boot managed to start.
func (c *Cluster) emergencyTeardown() {
	if c.coordProc != nil {
		c.coordProc.Kill()
	}
	for _, w := range c.workers {
		if w.proc != nil {
			w.proc.Kill()
		}
		if w.proxy != nil {
			w.proxy.Close()
		}
	}
}

// ParseSpec re-parses a record's spec JSON; exported for tests that
// want to inspect the corpus a seed produces.
func ParseSpec(specJSON string) (*spec.Job, error) {
	return spec.ParseJob(strings.NewReader(specJSON))
}
