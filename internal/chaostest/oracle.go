package chaostest

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/ralab/are/internal/artifact"
	"github.com/ralab/are/internal/metrics"
	"github.com/ralab/are/internal/server"
	"github.com/ralab/are/internal/spec"
)

// oracle computes and caches the expected result for every distinct job
// spec in the run — an in-process single-node execution through the
// exact code path the service's scheduler uses (server.RunLocal). The
// cluster's answers are held to these, under two regimes:
//
//   - single-node regime (jobs submitted directly to one worker, which
//     all carry workers:1): every reported float must be bitwise
//     identical — same engine, same sequential pass, no excuse;
//   - distributed regime (jobs fanned out by the coordinator): the
//     reassembled FullYLT is bitwise by contract, so everything priced
//     from it (the quotes) must be bitwise too, and the exact summary
//     fields (trials, min, max) must match; the merged moments carry
//     float-summation tolerance and the merged EP curves must sit
//     within the documented mergeable-sketch rank bound of the exact
//     empirical quantiles.
type oracle struct {
	cache *artifact.Cache

	mu   sync.Mutex
	runs map[string]*oracleRun
}

type oracleRun struct {
	res *server.JobResult
	// Exact empirical per-layer loss vectors, ascending — the rank
	// windows for merged EP curves are cut from these. Nil for sweeps
	// (sweeps never fan out).
	sortedAgg [][]float64
	sortedOcc [][]float64
}

func newOracle() *oracle {
	return &oracle{cache: artifact.NewCache(64), runs: make(map[string]*oracleRun)}
}

// run returns the expected result for specJSON, computing it on first
// use.
func (o *oracle) run(specJSON string) (*oracleRun, error) {
	o.mu.Lock()
	r, ok := o.runs[specJSON]
	o.mu.Unlock()
	if ok {
		return r, nil
	}
	js, err := spec.ParseJob(strings.NewReader(specJSON))
	if err != nil {
		return nil, fmt.Errorf("oracle: parse: %w", err)
	}
	res, full, err := server.RunLocal(context.Background(), o.cache, js)
	if err != nil {
		return nil, fmt.Errorf("oracle: run: %w", err)
	}
	r = &oracleRun{res: res}
	if full != nil {
		r.sortedAgg = make([][]float64, len(full.AggLoss))
		r.sortedOcc = make([][]float64, len(full.MaxOccLoss))
		for l := range full.AggLoss {
			r.sortedAgg[l] = append([]float64(nil), full.AggLoss[l]...)
			sort.Float64s(r.sortedAgg[l])
			r.sortedOcc[l] = append([]float64(nil), full.MaxOccLoss[l]...)
			sort.Float64s(r.sortedOcc[l])
		}
	}
	o.mu.Lock()
	o.runs[specJSON] = r
	o.mu.Unlock()
	return r, nil
}

// eqF is bitwise float equality with NaN==NaN, so a comparison never
// passes or fails by NaN accident.
func eqF(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// relDiff is |a-b| relative to |b| (absolute when b is ~0).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if math.Abs(b) > 1 {
		return d / math.Abs(b)
	}
	return d
}

func eqSummary(got, want server.SummaryJSON) error {
	if got != want { // struct of comparable floats+int; NaN impossible in summaries
		return fmt.Errorf("summary %+v != %+v", got, want)
	}
	return nil
}

func eqPoints(got, want []server.PointJSON) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d EP points, want %d", len(got), len(want))
	}
	for i := range got {
		if !eqF(got[i].ReturnPeriod, want[i].ReturnPeriod) || !eqF(got[i].Prob, want[i].Prob) || !eqF(got[i].Loss, want[i].Loss) {
			return fmt.Errorf("EP point %d: %+v != %+v", i, got[i], want[i])
		}
	}
	return nil
}

func eqQuote(got, want *server.QuoteJSON) error {
	if (got == nil) != (want == nil) {
		return fmt.Errorf("quote presence: got %v, want %v", got != nil, want != nil)
	}
	if got == nil {
		return nil
	}
	ok := eqF(got.ExpectedLoss, want.ExpectedLoss) && eqF(got.StdDev, want.StdDev) &&
		eqF(got.RiskLoad, want.RiskLoad) && eqF(got.ExpenseLoad, want.ExpenseLoad) &&
		eqF(got.TechnicalPremium, want.TechnicalPremium) && eqF(got.RateOnLine, want.RateOnLine) &&
		eqF(got.PML100, want.PML100) && eqF(got.TVaR99, want.TVaR99)
	if !ok {
		return fmt.Errorf("quote %+v != %+v", *got, *want)
	}
	return nil
}

// eqLayerExact is the single-node regime: every field bitwise.
func eqLayerExact(got, want server.LayerResult) error {
	if got.ID != want.ID || got.Name != want.Name {
		return fmt.Errorf("layer identity %d/%q != %d/%q", got.ID, got.Name, want.ID, want.Name)
	}
	if err := eqSummary(got.Summary, want.Summary); err != nil {
		return fmt.Errorf("agg %w", err)
	}
	if err := eqSummary(got.OccSummary, want.OccSummary); err != nil {
		return fmt.Errorf("occ %w", err)
	}
	if err := eqPoints(got.EP, want.EP); err != nil {
		return fmt.Errorf("AEP: %w", err)
	}
	if err := eqPoints(got.OEP, want.OEP); err != nil {
		return fmt.Errorf("OEP: %w", err)
	}
	return eqQuote(got.Quote, want.Quote)
}

// verifySingleNode holds a worker-direct job's result to bitwise
// identity with the oracle, variants included.
func (o *oracle) verifySingleNode(specJSON string, got *server.JobResult) error {
	want, err := o.run(specJSON)
	if err != nil {
		return err
	}
	w := want.res
	if got.Trials != w.Trials {
		return fmt.Errorf("trials %d != %d", got.Trials, w.Trials)
	}
	if got.Shards != 0 || got.Retried != 0 || got.WorkersUsed != 0 {
		return fmt.Errorf("single-node result reports cluster fields: %+v", got)
	}
	if len(got.Layers) != len(w.Layers) {
		return fmt.Errorf("%d layers, want %d", len(got.Layers), len(w.Layers))
	}
	for i := range got.Layers {
		if err := eqLayerExact(got.Layers[i], w.Layers[i]); err != nil {
			return fmt.Errorf("layer %d: %w", i, err)
		}
	}
	if len(got.Variants) != len(w.Variants) {
		return fmt.Errorf("%d variants, want %d", len(got.Variants), len(w.Variants))
	}
	for k := range got.Variants {
		gv, wv := got.Variants[k], w.Variants[k]
		if gv.Index != wv.Index || gv.Name != wv.Name {
			return fmt.Errorf("variant %d identity %d/%q != %d/%q", k, gv.Index, gv.Name, wv.Index, wv.Name)
		}
		if len(gv.Layers) != len(wv.Layers) {
			return fmt.Errorf("variant %d: %d layers, want %d", k, len(gv.Layers), len(wv.Layers))
		}
		for i := range gv.Layers {
			if err := eqLayerExact(gv.Layers[i], wv.Layers[i]); err != nil {
				return fmt.Errorf("variant %d layer %d: %w", k, i, err)
			}
		}
	}
	return nil
}

// mergedSketchH is a conservative ceiling on the merged quantile
// sketch's compaction count for this harness's corpus. The documented
// bound is ErrorBound = H/k with k = DefaultSketchK = 1024; chaos jobs
// carry at most a few thousand trials split into shards of a couple of
// hundred, so each shard sketch arrives uncompacted and the merge
// performs only a handful of compactions — 16 is far above anything the
// corpus can trigger while still holding the window to ~1.6% of ranks,
// orders of magnitude tighter than any real reassembly bug.
const mergedSketchH = 16

// checkRankWindow asserts each EP point's loss lies within the sketch
// rank bound of the exact empirical quantile cut from sorted losses.
func checkRankWindow(points []server.PointJSON, losses []float64, n int) error {
	slack := int(math.Ceil(float64(mergedSketchH)/float64(metrics.DefaultSketchK)*float64(n))) + 1
	for _, p := range points {
		if p.ReturnPeriod <= 1 {
			continue
		}
		rank := int(math.Ceil((1 - 1/p.ReturnPeriod) * float64(n)))
		lo, hi := rank-slack, rank+slack
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		if p.Loss < losses[lo-1] || p.Loss > losses[hi-1] {
			return fmt.Errorf("rp=%v: merged EP loss %v outside exact rank window [%v, %v]",
				p.ReturnPeriod, p.Loss, losses[lo-1], losses[hi-1])
		}
	}
	return nil
}

// verifyDistributed holds a coordinator job's merged result to the
// distributed regime's contract.
func (o *oracle) verifyDistributed(specJSON string, got *server.JobResult) error {
	want, err := o.run(specJSON)
	if err != nil {
		return err
	}
	w := want.res
	if got.Trials != w.Trials {
		return fmt.Errorf("trials %d != %d", got.Trials, w.Trials)
	}
	if got.Shards <= 0 {
		return fmt.Errorf("distributed result reports %d shards", got.Shards)
	}
	if len(got.Layers) != len(w.Layers) {
		return fmt.Errorf("%d layers, want %d", len(got.Layers), len(w.Layers))
	}
	n := w.Trials
	for i := range got.Layers {
		g, e := got.Layers[i], w.Layers[i]
		if g.ID != e.ID || g.Name != e.Name {
			return fmt.Errorf("layer %d identity %d/%q != %d/%q", i, g.ID, g.Name, e.ID, e.Name)
		}
		for _, s := range []struct {
			what     string
			got, exp server.SummaryJSON
		}{{"agg", g.Summary, e.Summary}, {"occ", g.OccSummary, e.OccSummary}} {
			if s.got.Trials != s.exp.Trials || !eqF(s.got.Min, s.exp.Min) || !eqF(s.got.Max, s.exp.Max) {
				return fmt.Errorf("layer %d %s exact fields: %+v != %+v", i, s.what, s.got, s.exp)
			}
			if relDiff(s.got.Mean, s.exp.Mean) > 1e-12 {
				return fmt.Errorf("layer %d %s mean %v vs %v beyond merge tolerance", i, s.what, s.got.Mean, s.exp.Mean)
			}
			if relDiff(s.got.StdDev, s.exp.StdDev) > 1e-9 {
				return fmt.Errorf("layer %d %s stddev %v vs %v beyond merge tolerance", i, s.what, s.got.StdDev, s.exp.StdDev)
			}
		}
		if err := checkRankWindow(g.EP, want.sortedAgg[i], n); err != nil {
			return fmt.Errorf("layer %d AEP: %w", i, err)
		}
		if err := checkRankWindow(g.OEP, want.sortedOcc[i], n); err != nil {
			return fmt.Errorf("layer %d OEP: %w", i, err)
		}
		// Quotes are priced from the reassembled YLT, which the service
		// guarantees bitwise — so the quote itself must be bitwise, and
		// its equality certifies the whole reassembly over the wire.
		if err := eqQuote(g.Quote, e.Quote); err != nil {
			return fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return nil
}
