// Package chaostest is the reusable black-box chaos harness behind
// test/chaos: it builds the real cmd/ared binary, spawns a coordinator
// and N workers as separate OS processes on OS-assigned ports, routes
// shard dispatch through in-harness TCP proxies so the network can be
// partitioned or slowed per worker, and drives the cluster with a
// seeded, fully pre-generated stream of weighted actions — submissions
// (plain, quoted, sweep), polls, cancellations, kill -9, restarts,
// coordinator restarts, partitions, slow links and spoofed heartbeats.
//
// Determinism is the point: the entire action script is a pure function
// of (seed, config), generated up front by simulating the only state the
// generator depends on (which worker slots are alive or partitioned, how
// many jobs have been submitted). Re-running a failing seed therefore
// replays the identical action trace; the trace and every process log
// land in an artifact directory for post-mortems.
//
// At every quiescent point (a "settle" action) the harness heals the
// network, waits for every outstanding job to reach a terminal state,
// and asserts the invariants the repository pins elsewhere in-process:
//
//   - completed quoted jobs price bitwise-identically to a single-node
//     library run of the same spec (quotes are a deterministic function
//     of the reassembled FullYLT, so bitwise quote equality certifies
//     bitwise YLT reassembly across the wire);
//   - jobs executed on a single node (direct-to-worker submissions)
//     reproduce the library run bitwise in every reported float;
//   - distributed EP curves sit within the documented mergeable-sketch
//     rank bound of the exact empirical curve;
//   - every submitted job reaches exactly one terminal state — once a
//     job is observed done/failed/cancelled it never changes state, and
//     a done job's result bytes never change (no loss, no
//     double-completion). Jobs that disappear with a coordinator or
//     worker restart are accounted as lost-to-restart (the in-memory
//     job table is the documented default) — disappearing any other
//     way fails.
//
// With Config.Durable the coordinator runs with -data-dir, and the
// lost-to-restart allowance is withdrawn entirely: after every kill -9
// plus restart, each pre-kill job must still exist — finished jobs must
// serve bitwise-identical result bytes from the recovered journal, and
// interrupted jobs must re-run under their original IDs to a result the
// oracle verifies. A single disappearance fails the run.
//
// Teardown asserts clean exits: every surviving process must drain and
// exit zero on SIGTERM; a wedged process gets SIGQUIT so its goroutine
// dump lands in the logs, and the test fails. Finally the harness
// re-binds every port the cluster used to prove nothing leaked.
package chaostest

import "time"

// Config sizes one chaos run. The zero value is not runnable; use
// DefaultConfig (the CI smoke shape) or LongConfig as a base.
type Config struct {
	// Seed drives everything random: the action mix, the job corpus,
	// fault targets. Same seed + same config = same script.
	Seed uint64

	// Workers is the number of worker slots in the cluster.
	Workers int

	// Actions is the length of the randomized action phase; the script
	// appends a deterministic restore phase (heal + restart + a few
	// final submissions + settle) after it.
	Actions int

	// SettleEvery inserts a quiescent settle/verify point after this
	// many randomized actions.
	SettleEvery int

	// MinWorkerKills and MinCoordinatorRestarts are floors the generator
	// enforces: if the weighted stream did not produce them, they are
	// appended (deterministically) before the restore phase.
	MinWorkerKills         int
	MinCoordinatorRestarts int

	// MaxTrials caps generated jobs' yet.trials; small counts keep the
	// oracle (a single-node library run per distinct spec) cheap.
	MaxTrials int

	// FinalSubmits is how many jobs the restore phase submits against
	// the healed cluster before the last settle, so a run always ends
	// with fresh end-to-end completions.
	FinalSubmits int

	// MinDone is the least number of jobs that must complete ("done")
	// over the whole run for it to count as a meaningful exercise.
	MinDone int

	// SettleTimeout bounds one settle point's wait for outstanding jobs
	// to reach terminal states.
	SettleTimeout time.Duration

	// ArtifactDir receives the action trace and per-process logs; empty
	// selects a temp directory (reported on failure).
	ArtifactDir string

	// Durable runs the coordinator with -data-dir (under ArtifactDir),
	// which changes the acceptance contract: coordinator restarts may
	// not lose anything. Every pre-kill job must be recovered — done
	// jobs with bitwise-stable result bytes, open jobs re-run to
	// oracle-verified completion under their original IDs.
	Durable bool
}

// DefaultConfig is the CI smoke shape: ~30s wall time, guaranteed to
// kill at least two workers and restart the coordinator at least once.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                   seed,
		Workers:                3,
		Actions:                220,
		SettleEvery:            45,
		MinWorkerKills:         3,
		MinCoordinatorRestarts: 2,
		MaxTrials:              4000,
		FinalSubmits:           5,
		MinDone:                10,
		SettleTimeout:          90 * time.Second,
	}
}

// DurableConfig is the CI smoke shape with the crash-safe job store
// on: same faults, stricter contract (zero jobs lost to coordinator
// restarts).
func DurableConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.Durable = true
	return c
}

// LongConfig is the on-demand deep soak: minutes of wall time, more
// faults, a bigger corpus.
func LongConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.Actions = 1200
	c.SettleEvery = 80
	c.MinWorkerKills = 10
	c.MinCoordinatorRestarts = 4
	c.MaxTrials = 12000
	c.FinalSubmits = 10
	c.MinDone = 50
	c.SettleTimeout = 5 * time.Minute
	return c
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Actions <= 0 {
		c.Actions = 60
	}
	if c.SettleEvery <= 0 {
		c.SettleEvery = 20
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 1200
	}
	if c.FinalSubmits <= 0 {
		c.FinalSubmits = 3
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 90 * time.Second
	}
}
