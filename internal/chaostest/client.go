package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/ralab/are/internal/dist"
	"github.com/ralab/are/internal/server"
)

// client is the harness's view of one ared process's HTTP API. It keeps
// results as raw bytes as well as decoded structs: byte identity across
// repeated fetches is one of the invariants (a done job's result never
// changes), and decoding happens on the same bytes the invariant saw.
type client struct {
	base string
	c    *http.Client
}

func newClient(base string) *client {
	return &client{
		base: strings.TrimRight(base, "/"),
		// Generous per-call timeout: the harness's own traffic must never
		// be what times out — degraded paths are the proxies' job.
		c: &http.Client{Timeout: 30 * time.Second},
	}
}

// httpError is a non-2xx API reply, kept simple so callers can switch
// on the code.
type httpError struct {
	code int
	body string
}

func (e *httpError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.body) }

// errCode extracts the status code from an error returned by this
// client; 0 for transport errors (connection refused, reset — the
// signatures of a killed process).
func errCode(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.code
	}
	return 0
}

// do runs one call; 2xx bodies are returned raw, anything else becomes
// an *httpError.
func (c *client) do(method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, &httpError{code: resp.StatusCode, body: strings.TrimSpace(string(b))}
	}
	return b, nil
}

// submit POSTs a job spec; on 202 returns the queued job's status.
func (c *client) submit(specJSON string) (server.Status, error) {
	var st server.Status
	b, err := c.do(http.MethodPost, "/v1/jobs", []byte(specJSON))
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(b, &st)
}

// status GETs one job's status.
func (c *client) status(id string) (server.Status, error) {
	var st server.Status
	b, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(b, &st)
}

// result GETs a done job's result — raw bytes plus the decoded form.
func (c *client) result(id string) ([]byte, *server.JobResult, error) {
	b, err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, nil, err
	}
	res := new(server.JobResult)
	if err := json.Unmarshal(b, res); err != nil {
		return nil, nil, fmt.Errorf("decode result %s: %w", id, err)
	}
	return b, res, nil
}

// cancel DELETEs a job; the returned status carries the post-cancel
// state.
func (c *client) cancel(id string) (server.Status, error) {
	var st server.Status
	b, err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(b, &st)
}

// cluster GETs the coordinator's registry.
func (c *client) cluster() (dist.ClusterStatus, error) {
	var cs dist.ClusterStatus
	b, err := c.do(http.MethodGet, "/v1/cluster", nil)
	if err != nil {
		return cs, err
	}
	return cs, json.Unmarshal(b, &cs)
}

// heartbeat spoofs one worker heartbeat — the clock-skew fault: a
// heartbeat arriving on behalf of a process that is long dead keeps the
// coordinator's lease alive, so dispatch keeps selecting a corpse.
func (c *client) heartbeat(workerID string) error {
	_, err := c.do(http.MethodPost, "/v1/cluster/workers/"+workerID+"/heartbeat", []byte("{}"))
	return err
}

// healthy GETs /healthz and reports status "ok".
func (c *client) healthy() bool {
	b, err := c.do(http.MethodGet, "/healthz", nil)
	if err != nil {
		return false
	}
	var h struct {
		Status string `json:"status"`
	}
	return json.Unmarshal(b, &h) == nil && h.Status == "ok"
}
