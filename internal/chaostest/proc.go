package chaostest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// buildOnce builds the real cmd/ared binary exactly once per test
// binary; every process the harness spawns is that artifact, not an
// in-process httptest stand-in — the chaos run exercises flag parsing,
// signal handling, stdout contracts and process death for real.
var buildOnce struct {
	sync.Once
	path string
	err  error
}

// BuildAred compiles cmd/ared once per test binary and returns the
// binary path (the first caller's dir wins; later calls return the same
// binary). An empty dir selects a private temp directory, which is the
// safe choice from tests — a t.TempDir passed here would be cleaned up
// while later tests in the same binary still reference the path.
func BuildAred(dir string) (string, error) {
	buildOnce.Do(func() {
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "ared-bin-"); err != nil {
				buildOnce.err = err
				return
			}
		}
		bin := filepath.Join(dir, "ared")
		cmd := exec.Command("go", "build", "-o", bin, "github.com/ralab/are/cmd/ared")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildOnce.err = fmt.Errorf("chaostest: build ared: %v\n%s", err, out)
			return
		}
		buildOnce.path = bin
	})
	return buildOnce.path, buildOnce.err
}

// Proc is one spawned ared process. Its stdout is scanned for the
// "ared: listening on" readiness line (which carries the resolved
// listen address — the contract that makes ":0" ports discoverable),
// and both streams are teed into a log file in the artifact directory
// so every process's full output survives the run.
type Proc struct {
	Name string
	Addr string // resolved listen address, available after WaitReady

	cmd   *exec.Cmd
	log   *os.File
	ready chan struct{}

	waitOnce sync.Once
	done     chan struct{}
	waitErr  error
}

// readyPrefix is the stdout line cmd/ared prints once every listener is
// bound; the address that follows is the resolved API address.
const readyPrefix = "ared: listening on "

// StartProc launches bin with args, logging to <dir>/<name>.log.
func StartProc(bin, dir, name string, args ...string) (*Proc, error) {
	logf, err := os.Create(filepath.Join(dir, name+".log"))
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logf.Close()
		return nil, err
	}
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("chaostest: start %s: %w", name, err)
	}
	p := &Proc{
		Name:  name,
		cmd:   cmd,
		log:   logf,
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.scan(stdout)
	go func() {
		err := cmd.Wait()
		p.waitOnce.Do(func() { p.waitErr = err })
		logf.Close()
		close(p.done)
	}()
	return p, nil
}

// scan tees stdout into the log while watching for the readiness line.
func (p *Proc) scan(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	readied := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(p.log, line)
		if !readied && strings.HasPrefix(line, readyPrefix) {
			rest := strings.TrimPrefix(line, readyPrefix)
			if i := strings.IndexByte(rest, ' '); i > 0 {
				p.Addr = rest[:i]
			}
			readied = true
			close(p.ready)
		}
	}
}

// WaitReady blocks until the process announced its listener (returning
// the resolved address) or died or the timeout passed.
func (p *Proc) WaitReady(timeout time.Duration) (string, error) {
	select {
	case <-p.ready:
		return p.Addr, nil
	case <-p.done:
		return "", fmt.Errorf("chaostest: %s exited before becoming ready: %v", p.Name, p.waitErr)
	case <-time.After(timeout):
		return "", fmt.Errorf("chaostest: %s not ready after %v", p.Name, timeout)
	}
}

// Kill is the chaos verb: SIGKILL, no shutdown, no drain — the process
// is gone mid-whatever-it-was-doing. Waits for the OS to reap it.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Kill()
	<-p.done
}

// Alive reports whether the process has not yet been reaped.
func (p *Proc) Alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// Stop is the teardown verb: SIGTERM and wait for a clean exit. A
// process that has not exited within timeout gets SIGQUIT — so its
// goroutine dump lands in the log for the post-mortem — then SIGKILL,
// and Stop reports the failure. A non-zero exit status is an error too:
// the binary's contract is that a signalled drain ends in exit 0.
func (p *Proc) Stop(timeout time.Duration) error {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(timeout):
		_ = p.cmd.Process.Signal(syscall.SIGQUIT) // dump goroutines into the log
		select {
		case <-p.done:
			return fmt.Errorf("chaostest: %s wedged on SIGTERM (exited only on SIGQUIT; see %s.log for the goroutine dump)", p.Name, p.Name)
		case <-time.After(5 * time.Second):
			_ = p.cmd.Process.Kill()
			<-p.done
			return fmt.Errorf("chaostest: %s ignored SIGTERM and SIGQUIT, killed (see %s.log)", p.Name, p.Name)
		}
	}
	if p.waitErr != nil {
		return fmt.Errorf("chaostest: %s exited non-zero on SIGTERM: %v", p.Name, p.waitErr)
	}
	return nil
}
