package chaostest

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func proxyBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func proxyGet(t *testing.T, p *Proxy, timeout time.Duration) (string, error) {
	t.Helper()
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Get(p.URL())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestProxyForwardsAndRetargets: the proxy's stable address forwards to
// its target, and SetTarget repoints it — the mechanism that preserves
// a worker slot's registry identity across process restarts.
func TestProxyForwardsAndRetargets(t *testing.T) {
	a := proxyBackend(t, "alpha")
	b := proxyBackend(t, "beta")
	p, err := NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetTarget(a.Listener.Addr().String())
	if got, err := proxyGet(t, p, 5*time.Second); err != nil || got != "alpha" {
		t.Fatalf("via proxy: %q, %v", got, err)
	}
	p.SetTarget(b.Listener.Addr().String())
	if got, err := proxyGet(t, p, 5*time.Second); err != nil || got != "beta" {
		t.Fatalf("after retarget: %q, %v", got, err)
	}
}

// TestProxyPartitionBlackholes: a partitioned link accepts connections
// but never answers — the dialer sees a timeout, not a refusal — and
// heals back to working order.
func TestProxyPartitionBlackholes(t *testing.T) {
	backend := proxyBackend(t, "ok")
	p, err := NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetTarget(backend.Listener.Addr().String())

	p.Partition()
	if got, err := proxyGet(t, p, 500*time.Millisecond); err == nil {
		t.Fatalf("blackholed proxy answered %q", got)
	} else if ne, ok := err.(net.Error); ok && !ne.Timeout() {
		// The failure mode matters: a partition must look like silence.
		t.Fatalf("blackholed proxy failed with non-timeout error: %v", err)
	}

	p.Heal()
	if got, err := proxyGet(t, p, 5*time.Second); err != nil || got != "ok" {
		t.Fatalf("healed proxy: %q, %v", got, err)
	}
}

// TestProxyDelay: injected latency slows the round trip by at least the
// configured amount without breaking it.
func TestProxyDelay(t *testing.T) {
	backend := proxyBackend(t, "slow")
	p, err := NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetTarget(backend.Listener.Addr().String())

	p.SetDelay(150 * time.Millisecond)
	start := time.Now()
	got, err := proxyGet(t, p, 5*time.Second)
	if err != nil || got != "slow" {
		t.Fatalf("slow proxy: %q, %v", got, err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("round trip took %v, expected >= 150ms of injected latency", d)
	}
	p.Heal()
	start = time.Now()
	if _, err := proxyGet(t, p, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("healed round trip still slow: %v", d)
	}
}

// TestProxyClosePortReleased: Close severs connections and releases the
// port (the leak check teardown relies on this).
func TestProxyClosePortReleased(t *testing.T) {
	p, err := NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Addr()
	p.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("proxy port %s not released: %v", addr, err)
	}
	ln.Close()
}
