package chaostest

import (
	"net"
	"sync"
	"time"
)

// Proxy is a TCP forwarder that stands between the coordinator and one
// worker as the worker's advertised address. It is the harness's
// network: because the proxy's own port is stable for the whole run, a
// worker slot keeps its registry identity across process restarts
// (SetTarget repoints the backend), and the link can be degraded
// without touching either process:
//
//   - Partition() blackholes the link — established connections stop
//     forwarding bytes and new connections are accepted but never
//     serviced, exactly what a dropped-packets partition looks like to
//     the dialer. The coordinator's shard timeout, not a connection
//     error, is what surfaces it. Note the partition is asymmetric by
//     construction: only dispatch traffic crosses the proxy, so the
//     worker's own heartbeats keep arriving and the coordinator keeps
//     believing in a worker it cannot reach — the nastier half of a
//     split.
//   - SetDelay(d) injects d of latency ahead of every forwarded chunk,
//     a slow worker rather than a dead one.
//   - Heal() clears both.
type Proxy struct {
	ln net.Listener

	mu          sync.Mutex
	target      string
	partitioned bool
	delay       time.Duration
	conns       map[net.Conn]struct{}
	closed      bool
}

// NewProxy opens the proxy's stable listener on an OS-assigned port.
// Target may be empty until the first SetTarget.
func NewProxy() (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, conns: make(map[net.Conn]struct{})}
	go p.accept()
	return p, nil
}

// Addr is the stable address workers advertise.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is Addr as a base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetTarget repoints new connections at addr (a restarted worker's
// fresh port). Established connections are severed: they belong to the
// old backend, and keep-alive clients must be forced to redial rather
// than keep talking to a corpse.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
	p.severConns()
}

// Partition blackholes the link until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
}

// SetDelay injects latency ahead of every forwarded chunk until Heal.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Heal restores a clean, fast link.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.delay = 0
	p.mu.Unlock()
}

// Close stops the listener and severs every tracked connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *Proxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go p.serve(client)
	}
}

// track registers c for teardown; reports false when the proxy is
// already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)

	// Respect the partition even before dialing: a blackholed dialer sees
	// its connection accepted (SYN handled by the kernel) but nothing
	// more. gate returns false once the proxy closes.
	if !p.gate() {
		return
	}
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	if target == "" {
		return
	}
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	defer backend.Close()
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if !p.gate() {
					break
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		// Half-close so the peer's read loop observes EOF promptly.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}
	go pipe(backend, client)
	pipe(client, backend)
	<-done
}

// gate blocks while the link is degraded: first the injected latency,
// then — for a partition — until Heal or Close. Returns false when the
// proxy closed while waiting.
func (p *Proxy) gate() bool {
	p.mu.Lock()
	d := p.delay
	p.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	for {
		p.mu.Lock()
		part, closed := p.partitioned, p.closed
		p.mu.Unlock()
		if closed {
			return false
		}
		if !part {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// severConns drops every live connection without touching the
// listener — used when a worker process is killed so in-flight
// dispatches fail the way a dead peer's connections do (reset), not by
// timing out against a half-open socket.
func (p *Proxy) severConns() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
