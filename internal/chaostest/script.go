package chaostest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// ActionKind enumerates the chaos vocabulary.
type ActionKind string

// The weighted action set. Submission targets: plain and quoted jobs go
// to the coordinator (the distributed path); sweep and single jobs
// marked worker-direct go straight to one worker's API (the single-node
// path — sweeps are rejected by coordinators by design).
const (
	ActSubmit             ActionKind = "submit"              // plain/quoted job -> coordinator
	ActSubmitWorker       ActionKind = "submit-worker"       // plain/sweep job -> one worker, single-node
	ActBurst              ActionKind = "burst"               // N identical jobs back to back -> one worker (the fusion path)
	ActPoll               ActionKind = "poll"                // GET status (and result when done)
	ActCancel             ActionKind = "cancel"              // DELETE job
	ActKillWorker         ActionKind = "kill-worker"         // SIGKILL the worker process
	ActRestartWorker      ActionKind = "restart-worker"      // fresh process, same advertise URL (re-register path)
	ActRestartCoordinator ActionKind = "restart-coordinator" // SIGKILL + fresh process on the same port
	ActPartition          ActionKind = "partition"           // blackhole the worker's dispatch proxy
	ActHeal               ActionKind = "heal"                // restore the worker's proxy (partition + latency)
	ActSlowWorker         ActionKind = "slow-worker"         // inject per-connection latency at the proxy
	ActSkewHeartbeat      ActionKind = "skew-heartbeat"      // spoof a heartbeat for a dead worker (clock-skewed lease)
	ActSettle             ActionKind = "settle"              // quiescent point: heal, drain, verify invariants
)

// Action is one step of a chaos script. Fields not applicable to the
// kind hold their zero value (Worker and Job use -1).
type Action struct {
	Seq    int
	Kind   ActionKind
	Worker int           // worker slot index
	Job    int           // job ordinal (submission order)
	Quoted bool          // submit: request quotes
	Sweep  bool          // submit-worker: scenario sweep
	Final  bool          // submit*: restore-phase submission against the healed cluster
	Spec   string        // submit*: canonical job spec JSON
	Count  int           // burst: identical submissions, consecutive ordinals from Job
	Delay  time.Duration // slow-worker: injected latency
}

// String renders the action as one trace line. The full spec JSON rides
// along on submissions so a trace alone is enough to replay by hand.
func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d %s", a.Seq, a.Kind)
	if a.Worker >= 0 {
		fmt.Fprintf(&b, " w%d", a.Worker)
	}
	if a.Job >= 0 {
		fmt.Fprintf(&b, " j%d", a.Job)
	}
	if a.Quoted {
		b.WriteString(" quoted")
	}
	if a.Sweep {
		b.WriteString(" sweep")
	}
	if a.Final {
		b.WriteString(" final")
	}
	if a.Count > 0 {
		fmt.Fprintf(&b, " count=%d", a.Count)
	}
	if a.Delay > 0 {
		fmt.Fprintf(&b, " delay=%s", a.Delay)
	}
	if a.Spec != "" {
		fmt.Fprintf(&b, " spec=%s", a.Spec)
	}
	return b.String()
}

// Script is a fully materialised chaos run: every action the executor
// will take, in order, plus the tallies the generator guaranteed.
type Script struct {
	Cfg     Config
	Actions []Action

	Kills         int // kill-worker actions
	CoordRestarts int // restart-coordinator actions
	Submits       int // total submissions (all kinds)
}

// Trace renders the whole script, one action per line — the replay
// artifact, and what the determinism test compares across generations.
func (s *Script) Trace() string {
	var b strings.Builder
	for _, a := range s.Actions {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// genState is the only cluster state action generation depends on. The
// executor evolves the real cluster through exactly these transitions,
// so the simulation here and reality cannot diverge — which is what
// makes the pre-generated script executable.
type genState struct {
	alive       []bool
	partitioned []bool
	submitted   int
}

func (g *genState) pick(rng *rand.Rand, want func(i int) bool) int {
	var c []int
	for i := range g.alive {
		if want(i) {
			c = append(c, i)
		}
	}
	if len(c) == 0 {
		return -1
	}
	return c[rng.Intn(len(c))]
}

func (g *genState) aliveCount() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

// Generate builds the chaos script for cfg — a pure function of the
// config (the seed above all), so the same inputs always yield the
// byte-identical trace.
func Generate(cfg Config) *Script {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	jg := newJobGen(rng, cfg.MaxTrials)
	s := &Script{Cfg: cfg}
	g := &genState{
		alive:       make([]bool, cfg.Workers),
		partitioned: make([]bool, cfg.Workers),
	}
	for i := range g.alive {
		g.alive[i] = true
	}

	emit := func(a Action) {
		a.Seq = len(s.Actions)
		s.Actions = append(s.Actions, a)
		switch a.Kind {
		case ActKillWorker:
			s.Kills++
			g.alive[a.Worker] = false
		case ActRestartWorker:
			g.alive[a.Worker] = true
			g.partitioned[a.Worker] = false
		case ActRestartCoordinator:
			s.CoordRestarts++
		case ActPartition:
			g.partitioned[a.Worker] = true
		case ActHeal:
			g.partitioned[a.Worker] = false
		case ActSubmit, ActSubmitWorker:
			s.Submits++
			g.submitted++
		case ActBurst:
			s.Submits += a.Count
			g.submitted += a.Count
		case ActSettle:
			for i := range g.partitioned {
				g.partitioned[i] = false // settle heals everything
			}
		}
	}

	submitCoord := func(final bool) {
		quoted := rng.Intn(2) == 0
		emit(Action{Kind: ActSubmit, Worker: -1, Job: g.submitted, Quoted: quoted, Final: final, Spec: jg.plain(quoted)})
	}
	submitWorker := func(final bool) bool {
		w := g.pick(rng, func(i int) bool { return g.alive[i] })
		if w < 0 {
			return false
		}
		sweep := rng.Intn(5) < 3
		spec := jg.plain(rng.Intn(2) == 0)
		if sweep {
			spec = jg.sweep()
		}
		emit(Action{Kind: ActSubmitWorker, Worker: w, Job: g.submitted, Sweep: sweep, Final: final, Spec: spec})
		return true
	}

	// The weighted chaos phase. Weights skew toward traffic (submissions
	// and polls) so faults land on a busy cluster, with enough fault
	// weight that the default smoke reliably reaches its kill/restart
	// floors without forcing.
	type choice struct {
		weight int
		try    func() bool
	}
	choices := []choice{
		{24, func() bool { submitCoord(false); return true }},
		{10, func() bool { return submitWorker(false) }},
		// Burst: one spec submitted 2-4 times back to back at one
		// worker — the compatible-job runs the admission planner fuses
		// into a single gather pass. Chaos asserts correctness (each
		// job's own lifecycle and result), never that fusion happened.
		{6, func() bool {
			w := g.pick(rng, func(i int) bool { return g.alive[i] })
			if w < 0 {
				return false
			}
			count := 2 + rng.Intn(3)
			emit(Action{Kind: ActBurst, Worker: w, Job: g.submitted, Count: count, Spec: jg.plain(rng.Intn(2) == 0)})
			return true
		}},
		{16, func() bool {
			if g.submitted == 0 {
				return false
			}
			emit(Action{Kind: ActPoll, Worker: -1, Job: rng.Intn(g.submitted)})
			return true
		}},
		{5, func() bool {
			if g.submitted == 0 {
				return false
			}
			emit(Action{Kind: ActCancel, Worker: -1, Job: rng.Intn(g.submitted)})
			return true
		}},
		{6, func() bool {
			w := g.pick(rng, func(i int) bool { return g.alive[i] })
			if w < 0 {
				return false
			}
			emit(Action{Kind: ActKillWorker, Worker: w, Job: -1})
			return true
		}},
		{8, func() bool {
			w := g.pick(rng, func(i int) bool { return !g.alive[i] })
			if w < 0 {
				return false
			}
			emit(Action{Kind: ActRestartWorker, Worker: w, Job: -1})
			return true
		}},
		{2, func() bool {
			emit(Action{Kind: ActRestartCoordinator, Worker: -1, Job: -1})
			return true
		}},
		{5, func() bool {
			w := g.pick(rng, func(i int) bool { return g.alive[i] && !g.partitioned[i] })
			if w < 0 {
				return false
			}
			emit(Action{Kind: ActPartition, Worker: w, Job: -1})
			return true
		}},
		{5, func() bool {
			w := g.pick(rng, func(i int) bool { return g.partitioned[i] })
			if w < 0 {
				return false
			}
			emit(Action{Kind: ActHeal, Worker: w, Job: -1})
			return true
		}},
		{4, func() bool {
			w := g.pick(rng, func(i int) bool { return g.alive[i] && !g.partitioned[i] })
			if w < 0 {
				return false
			}
			d := time.Duration(50+rng.Intn(250)) * time.Millisecond
			emit(Action{Kind: ActSlowWorker, Worker: w, Job: -1, Delay: d})
			return true
		}},
		{3, func() bool {
			w := g.pick(rng, func(i int) bool { return !g.alive[i] })
			if w < 0 {
				return false
			}
			emit(Action{Kind: ActSkewHeartbeat, Worker: w, Job: -1})
			return true
		}},
	}
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	sinceSettle := 0
	for n := 0; n < cfg.Actions; n++ {
		if sinceSettle >= cfg.SettleEvery {
			emit(Action{Kind: ActSettle, Worker: -1, Job: -1})
			sinceSettle = 0
		}
		// Rejection-free weighted pick: an inapplicable choice (e.g.
		// kill with nobody alive) draws again; every loop iteration
		// consumes rng deterministically either way.
		for {
			r := rng.Intn(total)
			var picked choice
			for _, c := range choices {
				if r < c.weight {
					picked = c
					break
				}
				r -= c.weight
			}
			if picked.try() {
				break
			}
		}
		sinceSettle++
	}

	// Enforce the fault floors the acceptance criteria name. Appended
	// deterministically, so the guarantee never depends on the weights.
	for s.Kills < cfg.MinWorkerKills {
		w := g.pick(rng, func(i int) bool { return g.alive[i] })
		if w < 0 {
			w = g.pick(rng, func(i int) bool { return !g.alive[i] })
			emit(Action{Kind: ActRestartWorker, Worker: w, Job: -1})
		}
		emit(Action{Kind: ActKillWorker, Worker: g.pick(rng, func(i int) bool { return g.alive[i] }), Job: -1})
	}
	for s.CoordRestarts < cfg.MinCoordinatorRestarts {
		emit(Action{Kind: ActRestartCoordinator, Worker: -1, Job: -1})
	}

	// Restore phase: a healed, fully populated cluster takes a last burst
	// of traffic, then the final settle verifies everything.
	for i := range g.alive {
		if g.partitioned[i] {
			emit(Action{Kind: ActHeal, Worker: i, Job: -1})
		}
	}
	for i := range g.alive {
		if !g.alive[i] {
			emit(Action{Kind: ActRestartWorker, Worker: i, Job: -1})
		}
	}
	for i := 0; i < cfg.FinalSubmits; i++ {
		if i%3 == 2 {
			submitWorker(true)
		} else {
			submitCoord(true)
		}
	}
	emit(Action{Kind: ActSettle, Worker: -1, Job: -1})
	return s
}
