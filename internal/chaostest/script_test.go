package chaostest

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic: the whole point of the harness — the same
// (seed, config) must yield the byte-identical action trace, because
// the trace is the replay artifact.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 42, 7777} {
		a := Generate(DefaultConfig(seed))
		b := Generate(DefaultConfig(seed))
		if a.Trace() != b.Trace() {
			t.Fatalf("seed %d: two generations produced different traces", seed)
		}
		if a.Trace() == Generate(DefaultConfig(seed+1)).Trace() {
			t.Fatalf("seed %d and %d produced identical traces", seed, seed+1)
		}
	}
}

// TestGenerateFloors: the generator must guarantee the acceptance
// criteria's fault floors whatever the weighted stream happened to roll.
func TestGenerateFloors(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		cfg := DefaultConfig(seed)
		s := Generate(cfg)
		if s.Kills < cfg.MinWorkerKills {
			t.Errorf("seed %d: %d kills, floor %d", seed, s.Kills, cfg.MinWorkerKills)
		}
		if s.CoordRestarts < cfg.MinCoordinatorRestarts {
			t.Errorf("seed %d: %d coordinator restarts, floor %d", seed, s.CoordRestarts, cfg.MinCoordinatorRestarts)
		}
		if s.Submits == 0 {
			t.Errorf("seed %d: no submissions", seed)
		}
		if s.Actions[len(s.Actions)-1].Kind != ActSettle {
			t.Errorf("seed %d: script does not end in a settle", seed)
		}
	}
}

// TestGenerateScriptConsistency replays the generator's own state
// transitions and checks every action is legal at its position — kills
// target live workers, restarts target dead ones, worker submissions
// target live workers, job ordinals are dense.
func TestGenerateScriptConsistency(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		cfg := DefaultConfig(seed)
		s := Generate(cfg)
		alive := make([]bool, cfg.Workers)
		for i := range alive {
			alive[i] = true
		}
		submitted := 0
		for _, a := range s.Actions {
			switch a.Kind {
			case ActKillWorker:
				if !alive[a.Worker] {
					t.Fatalf("seed %d #%d: kills dead worker %d", seed, a.Seq, a.Worker)
				}
				alive[a.Worker] = false
			case ActRestartWorker:
				if alive[a.Worker] {
					t.Fatalf("seed %d #%d: restarts live worker %d", seed, a.Seq, a.Worker)
				}
				alive[a.Worker] = true
			case ActSubmitWorker:
				if !alive[a.Worker] {
					t.Fatalf("seed %d #%d: submits to dead worker %d", seed, a.Seq, a.Worker)
				}
				fallthrough
			case ActSubmit:
				if a.Job != submitted {
					t.Fatalf("seed %d #%d: job ordinal %d, want %d", seed, a.Seq, a.Job, submitted)
				}
				submitted++
			case ActBurst:
				if !alive[a.Worker] {
					t.Fatalf("seed %d #%d: bursts at dead worker %d", seed, a.Seq, a.Worker)
				}
				if a.Count < 2 {
					t.Fatalf("seed %d #%d: burst of %d jobs (min 2)", seed, a.Seq, a.Count)
				}
				if a.Job != submitted {
					t.Fatalf("seed %d #%d: burst ordinal %d, want %d", seed, a.Seq, a.Job, submitted)
				}
				submitted += a.Count
			case ActPoll, ActCancel:
				if a.Job < 0 || a.Job >= submitted {
					t.Fatalf("seed %d #%d: %s of unknown job %d", seed, a.Seq, a.Kind, a.Job)
				}
			case ActSkewHeartbeat:
				if alive[a.Worker] {
					t.Fatalf("seed %d #%d: skews heartbeat of live worker %d", seed, a.Seq, a.Worker)
				}
			}
		}
		// The restore phase must leave everything alive for the final
		// settle's fresh submissions.
		for i, ok := range alive {
			if !ok {
				t.Fatalf("seed %d: worker %d left dead at end of script", seed, i)
			}
		}
	}
}

// TestGeneratedSpecsParse: every spec the corpus emits must be valid
// under the service's own parser, sweeps must carry variants, and the
// spec must ride in the trace line (the replay contract).
func TestGeneratedSpecsParse(t *testing.T) {
	specs, bursts, sampled, meanOverSigma := 0, 0, 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		s := Generate(DefaultConfig(seed))
		for _, a := range s.Actions {
			if a.Kind != ActSubmit && a.Kind != ActSubmitWorker && a.Kind != ActBurst {
				continue
			}
			specs++
			if a.Kind == ActBurst {
				bursts++
			}
			js, err := ParseSpec(a.Spec)
			if err != nil {
				t.Fatalf("seed %d #%d: generated spec rejected: %v", seed, a.Seq, err)
			}
			if js.Workers != 1 {
				t.Fatalf("seed %d #%d: corpus job has workers=%d; single-node bitwise oracle requires 1", seed, a.Seq, js.Workers)
			}
			if a.Sweep != (js.Sweep != nil) {
				t.Fatalf("seed %d #%d: sweep flag %v but spec sweep %v", seed, a.Seq, a.Sweep, js.Sweep != nil)
			}
			if js.Sweep != nil && a.Kind == ActSubmit {
				t.Fatalf("seed %d #%d: sweep routed to the coordinator (rejected by design)", seed, a.Seq)
			}
			if js.Sampled() {
				sampled++
				if js.Lookup == "combined" {
					t.Fatalf("seed %d #%d: sampled spec paired with lookup=combined (rejected by the service)", seed, a.Seq)
				}
			} else if js.Uncertainty != nil {
				meanOverSigma++
			}
			if !strings.Contains(a.String(), a.Spec) {
				t.Fatalf("seed %d #%d: trace line does not carry the spec", seed, a.Seq)
			}
		}
	}
	if specs == 0 {
		t.Fatal("corpus produced no specs")
	}
	if bursts == 0 {
		t.Fatal("corpus produced no burst actions")
	}
	if sampled == 0 {
		t.Fatal("corpus produced no sampled-severity jobs")
	}
	if meanOverSigma == 0 {
		t.Fatal("corpus produced no explicit-mean jobs over sigma tables")
	}
}

// TestLongConfigScales sanity-checks the -chaos.long shape.
func TestLongConfigScales(t *testing.T) {
	short, long := DefaultConfig(1), LongConfig(1)
	if long.Actions <= short.Actions || long.MinWorkerKills <= short.MinWorkerKills {
		t.Fatalf("long config does not scale up: %+v vs %+v", long, short)
	}
	s := Generate(long)
	if s.Kills < long.MinWorkerKills || s.CoordRestarts < long.MinCoordinatorRestarts {
		t.Fatalf("long script misses floors: %d kills, %d coord restarts", s.Kills, s.CoordRestarts)
	}
}
