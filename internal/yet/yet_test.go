package yet

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/ralab/are/internal/catalog"
	"github.com/ralab/are/internal/rng"
)

func genTable(t testing.TB, cfg Config, catalogSize int) *Table {
	t.Helper()
	tab, err := Generate(UniformSource(catalogSize), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGenerateBasicShape(t *testing.T) {
	tab := genTable(t, Config{Seed: 1, Trials: 100, MeanEvents: 50}, 1000)
	if tab.NumTrials() != 100 {
		t.Fatalf("NumTrials = %d", tab.NumTrials())
	}
	mean := tab.MeanTrialLen()
	if math.Abs(mean-50) > 5 {
		t.Fatalf("MeanTrialLen = %v, want ~50", mean)
	}
	if tab.NumOccurrences() != int(mean*100) {
		t.Fatalf("NumOccurrences inconsistent with mean")
	}
}

func TestGenerateFixedEvents(t *testing.T) {
	tab := genTable(t, Config{Seed: 2, Trials: 50, FixedEvents: 37}, 500)
	for i := 0; i < tab.NumTrials(); i++ {
		if len(tab.Trial(i)) != 37 {
			t.Fatalf("trial %d has %d events, want 37", i, len(tab.Trial(i)))
		}
	}
}

func TestTrialsSortedByTime(t *testing.T) {
	tab := genTable(t, Config{Seed: 3, Trials: 200, MeanEvents: 30}, 1000)
	for i := 0; i < tab.NumTrials(); i++ {
		trial := tab.Trial(i)
		for j := 1; j < len(trial); j++ {
			if trial[j].Time < trial[j-1].Time {
				t.Fatalf("trial %d not time-ordered at %d", i, j)
			}
		}
	}
}

func TestTimestampsInYear(t *testing.T) {
	tab := genTable(t, Config{Seed: 4, Trials: 100, MeanEvents: 20}, 100)
	for i := 0; i < tab.NumTrials(); i++ {
		for _, o := range tab.Trial(i) {
			if o.Time < 0 || o.Time >= 1 {
				t.Fatalf("timestamp %v outside [0,1)", o.Time)
			}
		}
	}
}

func TestEventIDsWithinCatalog(t *testing.T) {
	const n = 321
	tab := genTable(t, Config{Seed: 5, Trials: 100, MeanEvents: 40}, n)
	for i := 0; i < tab.NumTrials(); i++ {
		for _, o := range tab.Trial(i) {
			if int(o.Event) >= n {
				t.Fatalf("event %d outside catalog %d", o.Event, n)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTable(t, Config{Seed: 6, Trials: 50, MeanEvents: 25}, 777)
	b := genTable(t, Config{Seed: 6, Trials: 50, MeanEvents: 25}, 777)
	if a.NumOccurrences() != b.NumOccurrences() {
		t.Fatal("sizes differ")
	}
	for i := range a.events {
		if a.events[i] != b.events[i] || a.times[i] != b.times[i] {
			t.Fatalf("occurrence %d differs", i)
		}
	}
}

func TestTrialsIndependentOfTableSize(t *testing.T) {
	// Trial i is generated from stream (seed, i): the first 50 trials of
	// a 100-trial table must equal the 50-trial table exactly.
	small := genTable(t, Config{Seed: 7, Trials: 50, MeanEvents: 25}, 777)
	big := genTable(t, Config{Seed: 7, Trials: 100, MeanEvents: 25}, 777)
	for i := 0; i < 50; i++ {
		st, bt := small.Trial(i), big.Trial(i)
		if len(st) != len(bt) {
			t.Fatalf("trial %d lengths differ: %d vs %d", i, len(st), len(bt))
		}
		for j := range st {
			if st[j] != bt[j] {
				t.Fatalf("trial %d occurrence %d differs", i, j)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, Config{Trials: 1, MeanEvents: 1}); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil source: %v", err)
	}
	if _, err := Generate(UniformSource(10), Config{Trials: 0, MeanEvents: 1}); !errors.Is(err, ErrNoTrials) {
		t.Errorf("no trials: %v", err)
	}
	if _, err := Generate(UniformSource(10), Config{Trials: 1}); !errors.Is(err, ErrNoEvents) {
		t.Errorf("no events: %v", err)
	}
}

func TestSlice(t *testing.T) {
	tab := genTable(t, Config{Seed: 8, Trials: 20, MeanEvents: 10}, 100)
	s := tab.Slice(5, 15)
	if s.NumTrials() != 10 {
		t.Fatalf("slice trials = %d", s.NumTrials())
	}
	for i := 0; i < 10; i++ {
		orig, sub := tab.Trial(5+i), s.Trial(i)
		if len(orig) != len(sub) {
			t.Fatalf("slice trial %d length mismatch", i)
		}
		for j := range orig {
			if orig[j] != sub[j] {
				t.Fatalf("slice trial %d occurrence %d differs", i, j)
			}
		}
	}
}

func TestSlicePanicsOnBadRange(t *testing.T) {
	tab := genTable(t, Config{Seed: 8, Trials: 5, MeanEvents: 5}, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("bad Slice did not panic")
		}
	}()
	tab.Slice(3, 10)
}

func TestRoundTrip(t *testing.T) {
	tab := genTable(t, Config{Seed: 9, Trials: 64, MeanEvents: 33}, 4096)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrials() != tab.NumTrials() || got.NumOccurrences() != tab.NumOccurrences() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < tab.NumTrials(); i++ {
		a, b := tab.Trial(i), got.Trial(i)
		for j := range a {
			if a[j].Event != b[j].Event || a[j].Time != b[j].Time {
				t.Fatalf("trial %d occurrence %d differs after round trip", i, j)
			}
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE0123456789")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsShortInput(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("YE")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	tab := genTable(t, Config{Seed: 10, Trials: 10, MeanEvents: 10}, 100)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 20} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruptBounds(t *testing.T) {
	tab := genTable(t, Config{Seed: 11, Trials: 4, FixedEvents: 5}, 100)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// bounds start at offset 4(magic)+4(version)+8+8 = 24; corrupt the
	// second boundary to be non-monotone.
	copy(data[24+8:24+16], []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	tab := genTable(t, Config{Seed: 12, Trials: 2, FixedEvents: 2}, 10)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// Property: round trip preserves arbitrary generated tables.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, trials, mean uint8) bool {
		cfg := Config{Seed: seed, Trials: 1 + int(trials)%32, MeanEvents: 1 + float64(mean%50)}
		tab, err := Generate(UniformSource(1000), cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumTrials() != tab.NumTrials() {
			return false
		}
		for i := 0; i < tab.NumTrials(); i++ {
			a, b := tab.Trial(i), got.Trial(i)
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j].Event != b[j].Event || a[j].Time != b[j].Time {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSource(t *testing.T) {
	src := UniformSource(17)
	if src.NumEvents() != 17 {
		t.Fatalf("NumEvents = %d", src.NumEvents())
	}
}

func TestOccurrenceSize(t *testing.T) {
	// The flat layout assumes 16-byte occurrences (paper's 3.2-6GB
	// sizing for 800M-1500M occurrences is based on dense packing).
	var o Occurrence
	if got := int(16); got != 16 {
		t.Fatal("unreachable")
	}
	_ = o
	if s := int(unsafeSizeof()); s != 16 {
		t.Fatalf("Occurrence size = %d, want 16", s)
	}
}

func unsafeSizeof() uintptr {
	var o Occurrence
	_ = o
	return occurrenceSize
}

func TestMeanTrialLenEmpty(t *testing.T) {
	empty := &Table{bounds: []uint64{0}}
	if empty.MeanTrialLen() != 0 {
		t.Fatal("empty table mean != 0")
	}
}

func TestCatalogAsSource(t *testing.T) {
	// catalog.Catalog implements EventSource.
	var _ EventSource = (*catalog.Catalog)(nil)
}

func TestNegativeBinomialOverdispersion(t *testing.T) {
	// Dispersion d means variance/mean of per-trial counts ~ d.
	const mean, d = 50.0, 4.0
	tab, err := Generate(UniformSource(1000), Config{
		Seed: 41, Trials: 4000, MeanEvents: mean, Dispersion: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, tab.NumTrials())
	var sum float64
	for i := range counts {
		counts[i] = float64(len(tab.Trial(i)))
		sum += counts[i]
	}
	m := sum / float64(len(counts))
	var ss float64
	for _, c := range counts {
		ss += (c - m) * (c - m)
	}
	v := ss / float64(len(counts))
	if math.Abs(m-mean)/mean > 0.05 {
		t.Fatalf("NB mean = %v, want ~%v", m, mean)
	}
	ratio := v / m
	if ratio < 3.0 || ratio > 5.2 {
		t.Fatalf("variance/mean = %v, want ~%v", ratio, d)
	}
}

func TestPoissonNotOverdispersed(t *testing.T) {
	tab, err := Generate(UniformSource(1000), Config{Seed: 42, Trials: 4000, MeanEvents: 50})
	if err != nil {
		t.Fatal(err)
	}
	var sum, ss float64
	n := tab.NumTrials()
	for i := 0; i < n; i++ {
		sum += float64(len(tab.Trial(i)))
	}
	m := sum / float64(n)
	for i := 0; i < n; i++ {
		d := float64(len(tab.Trial(i))) - m
		ss += d * d
	}
	if ratio := ss / float64(n) / m; ratio > 1.25 {
		t.Fatalf("Poisson counts overdispersed: variance/mean = %v", ratio)
	}
}

// perilTestSource assigns even IDs to hurricanes, odd to earthquakes.
type perilTestSource struct{ n int }

func (s perilTestSource) Draw(r *rng.Rand) catalog.EventID { return catalog.EventID(r.Intn(s.n)) }
func (s perilTestSource) NumEvents() int                   { return s.n }
func (s perilTestSource) PerilOf(id catalog.EventID) catalog.Peril {
	if id%2 == 0 {
		return catalog.Hurricane
	}
	return catalog.Earthquake
}

func TestSeasonalTimestamps(t *testing.T) {
	tab, err := Generate(perilTestSource{n: 100}, Config{
		Seed: 43, Trials: 400, MeanEvents: 50, Seasonal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hSum, eSum float64
	var hN, eN int
	for i := 0; i < tab.NumTrials(); i++ {
		for _, o := range tab.Trial(i) {
			if o.Time < 0 || o.Time >= 1 {
				t.Fatalf("seasonal timestamp %v outside [0,1)", o.Time)
			}
			if o.Event%2 == 0 {
				hSum += o.Time
				hN++
			} else {
				eSum += o.Time
				eN++
			}
		}
	}
	hMean := hSum / float64(hN)
	eMean := eSum / float64(eN)
	// Hurricanes bunch late in the year (Beta(9,4) mean ~0.69);
	// earthquakes are uniform (~0.5).
	if hMean < 0.62 || hMean > 0.76 {
		t.Fatalf("hurricane season mean = %v, want ~0.69", hMean)
	}
	if math.Abs(eMean-0.5) > 0.05 {
		t.Fatalf("earthquake time mean = %v, want ~0.5", eMean)
	}
}

func TestSeasonalWithoutPerilSource(t *testing.T) {
	// UniformSource has no perils: a shared (hurricane) profile applies.
	tab, err := Generate(UniformSource(100), Config{
		Seed: 44, Trials: 100, MeanEvents: 40, Seasonal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.NumTrials(); i++ {
		trial := tab.Trial(i)
		for j := 1; j < len(trial); j++ {
			if trial[j].Time < trial[j-1].Time {
				t.Fatal("seasonal trial not time-ordered")
			}
		}
	}
}

func TestSeasonalCoversAllPerilProfiles(t *testing.T) {
	r := rng.New(45)
	for _, p := range catalog.Perils() {
		for i := 0; i < 2000; i++ {
			tm := seasonalTime(r, p)
			if tm < 0 || tm >= 1 {
				t.Fatalf("peril %v produced timestamp %v", p, tm)
			}
		}
	}
}

func TestGenerateRangeMatchesFullTableSlice(t *testing.T) {
	cfg := Config{Seed: 99, Trials: 500, MeanEvents: 40, Dispersion: 2, Seasonal: true}
	src := UniformSource(1000)
	full, err := Generate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 500}, {0, 100}, {123, 289}, {499, 500}} {
		lo, hi := r[0], r[1]
		shard, err := GenerateRange(src, cfg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Slice(lo, hi)
		if shard.NumTrials() != want.NumTrials() {
			t.Fatalf("[%d,%d): %d trials, want %d", lo, hi, shard.NumTrials(), want.NumTrials())
		}
		for i := 0; i < shard.NumTrials(); i++ {
			got, exp := shard.Trial(i), want.Trial(i)
			if len(got) != len(exp) {
				t.Fatalf("[%d,%d) trial %d: %d occurrences, want %d", lo, hi, i, len(got), len(exp))
			}
			for j := range got {
				if got[j].Event != exp[j].Event || got[j].Time != exp[j].Time {
					t.Fatalf("[%d,%d) trial %d occ %d: %+v != %+v", lo, hi, i, j, got[j], exp[j])
				}
			}
		}
	}
}

func TestGenerateRangeRejectsBadBounds(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 10, MeanEvents: 5}
	src := UniformSource(10)
	for _, r := range [][2]int{{-1, 5}, {5, 11}, {7, 7}, {8, 2}} {
		if _, err := GenerateRange(src, cfg, r[0], r[1]); !errors.Is(err, ErrBadRange) {
			t.Errorf("[%d,%d): err = %v, want ErrBadRange", r[0], r[1], err)
		}
	}
}
