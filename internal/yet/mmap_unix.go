//go:build (linux || darwin) && !nommap

package yet

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can serve tables straight
// from the page cache. The nommap build tag forces the portable
// heap-decode fallback on platforms that would otherwise map.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: the kernel's page
// cache backs the mapping, so N processes (or N jobs in one process)
// mapping the same YET file share one physical copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
