package yet

// Round-trip coverage for the format version bump: the v2 writer must
// round-trip bitwise through both readers, v1 files written by earlier
// releases must still load to the same table, and corrupt payloads of
// either version must be rejected.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// writeV1 serialises tab in the retired version-1 format (interleaved
// 16-byte occurrence records), reproducing the old writer byte for byte
// so compatibility tests exercise real legacy files.
func writeV1(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	w(uint32(versionAoS))
	w(uint64(tab.NumTrials()))
	w(uint64(tab.NumOccurrences()))
	w(tab.bounds)
	for i := range tab.events {
		w(tab.events[i])
		w(uint32(0)) // the v1 record's alignment padding
		w(math.Float64bits(tab.times[i]))
	}
	return buf.Bytes()
}

func tablesEqual(t *testing.T, a, b *Table, context string) {
	t.Helper()
	if a.NumTrials() != b.NumTrials() || a.NumOccurrences() != b.NumOccurrences() {
		t.Fatalf("%s: shape mismatch", context)
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("%s: event column differs at %d", context, i)
		}
		if math.Float64bits(a.times[i]) != math.Float64bits(b.times[i]) {
			t.Fatalf("%s: time column differs at %d", context, i)
		}
	}
	for i := range a.bounds {
		if a.bounds[i] != b.bounds[i] {
			t.Fatalf("%s: bounds differ at %d", context, i)
		}
	}
}

// TestV1FilesStillLoad: a legacy interleaved file decodes to the same
// columns the v2 writer round-trips, through both the whole-table
// reader and the streaming reader.
func TestV1FilesStillLoad(t *testing.T) {
	tab := genTable(t, Config{Seed: 61, Trials: 40, MeanEvents: 25}, 3000)
	v1 := writeV1(t, tab)

	got, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, tab, "v1 Read")

	rd, err := NewReader(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Version() != 1 {
		t.Fatalf("Version = %d, want 1", rd.Version())
	}
	streamed := &Table{bounds: []uint64{0}}
	for !rd.Done() {
		b, err := rd.ReadBatch(7)
		if err != nil {
			t.Fatal(err)
		}
		base := streamed.bounds[len(streamed.bounds)-1]
		streamed.events = append(streamed.events, b.events...)
		streamed.times = append(streamed.times, b.times...)
		for _, v := range b.bounds[1:] {
			streamed.bounds = append(streamed.bounds, base+v)
		}
	}
	tablesEqual(t, streamed, tab, "v1 streamed")
}

// TestV2WriterVersionAndSize: the writer stamps version 2 and drops the
// v1 padding (12 bytes per occurrence instead of 16).
func TestV2WriterVersionAndSize(t *testing.T) {
	tab := genTable(t, Config{Seed: 62, Trials: 16, FixedEvents: 10}, 500)
	var buf bytes.Buffer
	n, err := tab.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	data := buf.Bytes()
	if v := binary.LittleEndian.Uint32(data[4:8]); v != 2 {
		t.Fatalf("written version = %d, want 2", v)
	}
	wantLen := 4 + 4 + 8 + 8 + 8*(tab.NumTrials()+1) + 12*tab.NumOccurrences()
	if buf.Len() != wantLen {
		t.Fatalf("v2 size = %d, want %d (12 bytes/occurrence)", buf.Len(), wantLen)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Version() != 2 {
		t.Fatalf("Version = %d, want 2", rd.Version())
	}
}

// TestV2RoundTripBitwise: writer -> reader preserves every column bit
// across generation shapes (empty trials included).
func TestV2RoundTripBitwise(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 63, Trials: 50, MeanEvents: 20},
		{Seed: 64, Trials: 80, MeanEvents: 0.7}, // many empty trials
		{Seed: 65, Trials: 10, FixedEvents: 200, Seasonal: true},
	} {
		tab := genTable(t, cfg, 2000)
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		tablesEqual(t, got, tab, "v2 round trip")
	}
}

// TestV1TruncationRejected mirrors the v2 truncation tests for the
// legacy payload decoder.
func TestV1TruncationRejected(t *testing.T) {
	tab := genTable(t, Config{Seed: 66, Trials: 6, FixedEvents: 4}, 100)
	v1 := writeV1(t, tab)
	for _, cut := range []int{len(v1) - 1, len(v1) - 20, len(v1) / 2} {
		if _, err := Read(bytes.NewReader(v1[:cut])); err == nil {
			t.Fatalf("v1 truncation at %d accepted", cut)
		}
	}
}

// TestUnknownVersionRejected guards the version gate now that two are
// accepted.
func TestUnknownVersionRejected(t *testing.T) {
	tab := genTable(t, Config{Seed: 67, Trials: 2, FixedEvents: 2}, 10)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, v := range []uint32{0, 3, 99} {
		binary.LittleEndian.PutUint32(data[4:8], v)
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: err = %v, want ErrBadVersion", v, err)
		}
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: stream err = %v, want ErrBadVersion", v, err)
		}
	}
}

// TestV1V2SameContentDifferentBytes: the same table serialises to
// different byte streams but identical decoded content — the combined
// contract of "accept both on read".
func TestV1V2SameContentDifferentBytes(t *testing.T) {
	tab := genTable(t, Config{Seed: 68, Trials: 30, MeanEvents: 15}, 1000)
	var v2 bytes.Buffer
	if _, err := tab.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	v1 := writeV1(t, tab)
	if bytes.Equal(v1, v2.Bytes()) {
		t.Fatal("v1 and v2 encodings unexpectedly identical")
	}
	a, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, a, b, "v1 vs v2 decode")
}
