// Package yet implements the Year Event Table: the database of
// pre-simulated years that gives aggregate analysis its consistent lens
// (paper §II.A.1).
//
// Each trial Ti is an ordered sequence of (event ID, timestamp) pairs —
// one alternative view of which events occur within a contractual year and
// in which order. A production YET holds thousands to millions of trials
// of roughly 800-1500 occurrences each.
//
// The in-memory layout is columnar (struct of arrays): event IDs and
// timestamps live in two flat vectors sliced by a shared trial-boundary
// vector. The engine's kernels stream only the 4-byte event column
// (TrialEvents) — the access the paper identifies as memory-bound —
// instead of pulling 16-byte interleaved occurrence structs through the
// cache to read 4-byte IDs; timestamps stay resident but untouched until
// a consumer actually needs them (TrialTimes). The flat vectors mirror
// the paper's basic implementation (§III.B.1) and keep the table
// trivially serialisable and memory-mappable.
//
// The package covers the table's full lifecycle:
//
//   - Generate builds synthetic tables (Poisson or negative-binomial
//     occurrence counts, optional seasonal timestamps), deterministic in
//     the seed — trial i always comes from rng stream (seed, i), so a
//     table's Config doubles as its content identity (the ared service
//     caches generated tables under a hash of it).
//   - Table.WriteTo / Read serialise a table in the package's binary
//     format (version 2, trial-grouped columnar; version 1 files are
//     still read).
//   - Reader decodes that format incrementally — header and trial
//     boundaries eagerly, payloads in caller-sized batches — which is
//     what lets the engine's streaming pipeline analyse tables far
//     larger than memory (see stream.go and core.NewStreamSource).
package yet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"unsafe"

	"github.com/ralab/are/internal/catalog"
	"github.com/ralab/are/internal/rng"
	"github.com/ralab/are/internal/stats"
)

// Occurrence is one (event, timestamp) pair within a trial. Time is the
// fraction of the contractual year elapsed, in [0, 1). It remains the
// record type of the row-oriented views (Trial, generation scratch);
// the table itself stores columns.
type Occurrence struct {
	Event catalog.EventID
	_     uint32 // padding: keeps Time 8-byte aligned in []Occurrence views
	Time  float64
}

// Table is a packed Year Event Table in columnar (SoA) layout. The
// backing is either heap slices (Generate, Read) or a shared read-only
// file mapping (Map; see map.go) — the accessors hide which.
type Table struct {
	events []uint32  // all trials' event IDs, concatenated (heap backing)
	times  []float64 // all trials' timestamps, parallel to events (heap backing)
	bounds []uint64  // len = NumTrials+1; trial i spans [bounds[i], bounds[i+1])

	m     *mapping // non-nil when columns are served from an mmap'd file
	mbase uint64   // file-order occurrence offset of this view's trial 0
	owns  bool     // this table (not a Slice view) owns m's lifetime
}

// Config controls YET generation.
type Config struct {
	Seed   uint64
	Trials int

	// MeanEvents is the expected number of occurrences per trial (the
	// catalog-wide annual rate). Per-trial counts are Poisson around it.
	// The paper's range is 800-1500.
	MeanEvents float64

	// FixedEvents, when > 0, forces every trial to exactly this many
	// occurrences, which the performance figures use to control problem
	// size precisely.
	FixedEvents int

	// Dispersion, when > 1, switches per-trial occurrence counts from
	// Poisson to negative binomial with variance = Dispersion x mean,
	// modelling the year-to-year clustering (active vs quiet seasons)
	// real catalogs exhibit. 0 or 1 keeps Poisson counts.
	Dispersion float64

	// Seasonal, when true, draws timestamps from a peril-appropriate
	// within-year distribution instead of uniform: occurrences bunch in
	// season (e.g. hurricanes concentrated mid-year). Requires the
	// EventSource to implement PerilSource; otherwise a single shared
	// seasonal profile is used.
	Seasonal bool
}

// Validation errors.
var (
	ErrNoTrials  = errors.New("yet: Trials must be positive")
	ErrNoEvents  = errors.New("yet: MeanEvents or FixedEvents must be positive")
	ErrNilSource = errors.New("yet: event source must be non-nil")
)

// EventSource abstracts "draw the next occurring event", normally a
// *catalog.Catalog.
type EventSource interface {
	Draw(r *rng.Rand) catalog.EventID
	NumEvents() int
}

// uniformSource draws event IDs uniformly from [0, n); used when sampling
// should not be rate-weighted (synthetic benchmarks).
type uniformSource struct{ n int }

func (u uniformSource) Draw(r *rng.Rand) catalog.EventID {
	return catalog.EventID(r.Intn(u.n))
}
func (u uniformSource) NumEvents() int { return u.n }

// UniformSource returns an EventSource drawing uniformly from a catalog of
// n events.
func UniformSource(n int) EventSource { return uniformSource{n: n} }

// Generate builds a YET by simulating Trials years. Each trial's
// occurrence count is Poisson(MeanEvents) (or FixedEvents), events are
// drawn from src, and timestamps are uniform over the year and sorted
// ascending — the ordered-set structure the aggregate terms rely on.
// Trial i is generated from rng stream (Seed, i), so the table content is
// independent of generation order and may be parallelised.
func Generate(src EventSource, cfg Config) (*Table, error) {
	return GenerateRange(src, cfg, 0, cfg.Trials)
}

// ErrBadRange rejects shard bounds outside [0, Trials].
var ErrBadRange = errors.New("yet: generation range outside [0, Trials]")

// GenerateRange builds only trials [lo, hi) of the table Generate would
// build from the same config: because trial i is a pure function of
// (Seed, i), the shard's trial t is bitwise identical to trial lo+t of
// the full table. This is what lets a distributed worker materialise
// exactly its shard of a job's YET — O(hi-lo) memory and work, no
// coordination — while the cluster's merged result still reproduces the
// single-node run exactly.
//
// Each trial is drawn and time-sorted in a small row-oriented scratch
// (the same draw order and sort call as every prior format version, so
// content stays bitwise identical) and then appended to the columns.
func GenerateRange(src EventSource, cfg Config, lo, hi int) (*Table, error) {
	if src == nil {
		return nil, ErrNilSource
	}
	if cfg.Trials <= 0 {
		return nil, ErrNoTrials
	}
	if cfg.MeanEvents <= 0 && cfg.FixedEvents <= 0 {
		return nil, ErrNoEvents
	}
	if lo < 0 || hi > cfg.Trials || lo >= hi {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrBadRange, lo, hi, cfg.Trials)
	}
	n := hi - lo
	t := &Table{bounds: make([]uint64, 1, n+1)}
	expect := cfg.MeanEvents
	if cfg.FixedEvents > 0 {
		expect = float64(cfg.FixedEvents)
	}
	capHint := int(float64(n) * expect * 11 / 10)
	t.events = make([]uint32, 0, capHint)
	t.times = make([]float64, 0, capHint)
	perils, _ := src.(PerilSource)
	var scratch []Occurrence
	for i := lo; i < hi; i++ {
		r := rng.At(cfg.Seed, uint64(i))
		n := cfg.FixedEvents
		if n <= 0 {
			if cfg.Dispersion > 1 {
				n = negBinomial(r, cfg.MeanEvents, cfg.Dispersion)
			} else {
				n = stats.Poisson(r, cfg.MeanEvents)
			}
		}
		if cap(scratch) < n {
			scratch = make([]Occurrence, n)
		}
		trial := scratch[:n]
		for j := 0; j < n; j++ {
			ev := src.Draw(r)
			tm := r.Float64()
			if cfg.Seasonal {
				p := catalog.Hurricane
				if perils != nil {
					p = perils.PerilOf(ev)
				}
				tm = seasonalTime(r, p)
			}
			trial[j] = Occurrence{Event: ev, Time: tm}
		}
		sort.Slice(trial, func(a, b int) bool { return trial[a].Time < trial[b].Time })
		for j := range trial {
			t.events = append(t.events, uint32(trial[j].Event))
			t.times = append(t.times, trial[j].Time)
		}
		t.bounds = append(t.bounds, uint64(len(t.events)))
	}
	return t, nil
}

// PerilSource is optionally implemented by event sources that can report
// an event's peril, enabling peril-specific seasonality.
type PerilSource interface {
	PerilOf(id catalog.EventID) catalog.Peril
}

// negBinomial draws a negative binomial count with the given mean and
// variance-to-mean ratio d > 1, via the gamma-Poisson mixture:
// lambda ~ Gamma(shape=mean/(d-1), scale=d-1), N ~ Poisson(lambda).
func negBinomial(r *rng.Rand, mean, d float64) int {
	shape := mean / (d - 1)
	lambda := stats.Gamma(r, shape, d-1)
	return stats.Poisson(r, lambda)
}

// seasonalTime draws a within-year timestamp from the peril's seasonal
// profile: peaked mid-season for hurricanes and tornadoes, winter-peaked
// for winter storms, broad for floods, uniform for earthquakes. The
// result is clamped into [0, 1) to honour the table invariant.
func seasonalTime(r *rng.Rand, p catalog.Peril) float64 {
	t := rawSeasonalTime(r, p)
	if t >= 1 {
		t = math.Nextafter(1, 0)
	}
	if t < 0 {
		t = 0
	}
	return t
}

func rawSeasonalTime(r *rng.Rand, p catalog.Peril) float64 {
	switch p {
	case catalog.Hurricane:
		// Aug-Oct peak: Beta centred around 0.7 of the year.
		return stats.Beta(r, 9, 4)
	case catalog.Tornado:
		// Spring peak.
		return stats.Beta(r, 4, 7)
	case catalog.WinterStorm:
		// Bimodal at the year's edges: reflect a summer-peaked Beta.
		x := stats.Beta(r, 6, 6)
		x += 0.5
		if x >= 1 {
			x -= 1
		}
		return x
	case catalog.Flood:
		return stats.Beta(r, 2, 2)
	default: // earthquakes and unknown perils have no season
		return r.Float64()
	}
}

// NumTrials returns the number of trials.
func (t *Table) NumTrials() int { return len(t.bounds) - 1 }

// NumOccurrences returns the total number of event occurrences.
func (t *Table) NumOccurrences() int { return int(t.bounds[t.NumTrials()] - t.bounds[0]) }

// TrialEvents returns the event-ID column of trial i (shared storage;
// callers must not modify it). This is the engine kernels' hot accessor:
// 4 bytes streamed per occurrence, nothing else touched — for a mapped
// table the returned slice aliases the page cache directly.
func (t *Table) TrialEvents(i int) []uint32 {
	if t.m != nil {
		return t.m.trialEvents(t.mbase+t.bounds[i], t.bounds[i+1]-t.bounds[i])
	}
	return t.events[t.bounds[i]:t.bounds[i+1]]
}

// TrialTimes returns the timestamp column of trial i (shared storage;
// callers must not modify it), parallel to TrialEvents(i). On a mapped
// table the first call materialises the whole (cold) time column once
// per mapping; see map.go for the alignment reason.
func (t *Table) TrialTimes(i int) []float64 {
	if t.m != nil {
		ts := t.m.materialiseTimes()
		return ts[t.mbase+t.bounds[i] : t.mbase+t.bounds[i+1]]
	}
	return t.times[t.bounds[i]:t.bounds[i+1]]
}

// TrialLen returns the occurrence count of trial i without touching
// either column.
func (t *Table) TrialLen(i int) int {
	return int(t.bounds[i+1] - t.bounds[i])
}

// Trial materialises trial i as a row-oriented occurrence slice. It
// allocates per call — a convenience for oracles, tests and report code;
// hot paths should read the columns (TrialEvents/TrialTimes) directly.
func (t *Table) Trial(i int) []Occurrence {
	evs, tms := t.TrialEvents(i), t.TrialTimes(i)
	occ := make([]Occurrence, len(evs))
	for j := range occ {
		occ[j] = Occurrence{Event: catalog.EventID(evs[j]), Time: tms[j]}
	}
	return occ
}

// MeanTrialLen returns the average occurrences per trial.
func (t *Table) MeanTrialLen() float64 {
	if t.NumTrials() == 0 {
		return 0
	}
	return float64(t.NumOccurrences()) / float64(t.NumTrials())
}

// Slice returns a view containing trials [lo, hi) that shares column
// storage with t; used to partition work across engine workers. Views
// of a mapped table share its mapping (and keep it alive): N shards of
// one job cost one decode-free mapping between them.
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 || hi > t.NumTrials() || lo > hi {
		panic(fmt.Sprintf("yet: bad slice [%d,%d) of %d trials", lo, hi, t.NumTrials()))
	}
	base := t.bounds[lo]
	bounds := make([]uint64, hi-lo+1)
	for i := range bounds {
		bounds[i] = t.bounds[lo+i] - base
	}
	if t.m != nil {
		return &Table{bounds: bounds, m: t.m, mbase: t.mbase + base}
	}
	return &Table{
		events: t.events[base:t.bounds[hi]],
		times:  t.times[base:t.bounds[hi]],
		bounds: bounds,
	}
}

// ---------------------------------------------------------------------------
// Binary serialisation.
//
// Version 2 (written), trial-grouped columnar:
//
//	magic  "YETB"            4 bytes
//	version uint32           little endian (2)
//	numTrials uint64
//	numOcc    uint64
//	bounds    (numTrials+1) x uint64
//	payload   per trial: events (n_i x uint32), then times (n_i x float64)
//
// Version 1 (still read) interleaved each occurrence as
// { event uint32, pad uint32, time float64 }; v2 drops the padding —
// 12 bytes per occurrence instead of 16 — and groups each trial's
// columns so both the whole-table reader and the streaming reader
// decode straight into the in-memory column layout.

const (
	magic   = "YETB"
	version = 2 // written; readers also accept 1

	versionAoS = 1 // interleaved 16-byte occurrence records
)

// Serialisation errors.
var (
	ErrBadMagic   = errors.New("yet: bad magic (not a YET file)")
	ErrBadVersion = errors.New("yet: unsupported version")
	ErrCorrupt    = errors.New("yet: corrupt table data")
)

// WriteTo serialises the table in the current (v2) format. It implements
// io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += 4
	if err := write(uint32(version)); err != nil {
		return n, err
	}
	if err := write(uint64(t.NumTrials())); err != nil {
		return n, err
	}
	if err := write(uint64(t.NumOccurrences())); err != nil {
		return n, err
	}
	if err := write(t.bounds); err != nil {
		return n, err
	}
	var rec [8]byte
	for i := 0; i < t.NumTrials(); i++ {
		for _, ev := range t.TrialEvents(i) {
			binary.LittleEndian.PutUint32(rec[:4], ev)
			if _, err := bw.Write(rec[:4]); err != nil {
				return n, err
			}
			n += 4
		}
		for _, tm := range t.TrialTimes(i) {
			binary.LittleEndian.PutUint64(rec[:8], math.Float64bits(tm))
			if _, err := bw.Write(rec[:8]); err != nil {
				return n, err
			}
			n += 8
		}
	}
	return n, bw.Flush()
}

// header is the parsed fixed-size prefix shared by the whole-table
// reader and the streaming reader.
type header struct {
	version   uint32
	numTrials uint64
	numOcc    uint64
}

// readHeader parses magic, version and the table dimensions.
func readHeader(br *bufio.Reader) (header, error) {
	var h header
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(mg[:]) != magic {
		return h, ErrBadMagic
	}
	if err := binary.Read(br, binary.LittleEndian, &h.version); err != nil {
		return h, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if h.version != version && h.version != versionAoS {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, h.version)
	}
	if err := binary.Read(br, binary.LittleEndian, &h.numTrials); err != nil {
		return h, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &h.numOcc); err != nil {
		return h, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	const maxReasonable = 1 << 40
	if h.numTrials >= maxReasonable || h.numOcc >= maxReasonable {
		return h, fmt.Errorf("%w: implausible sizes trials=%d occ=%d", ErrCorrupt, h.numTrials, h.numOcc)
	}
	return h, nil
}

// readBounds parses and validates the monotone boundary vector.
func readBounds(br *bufio.Reader, h header) ([]uint64, error) {
	const preallocCap = 1 << 20
	bounds := make([]uint64, 0, min64(h.numTrials+1, preallocCap))
	var prev uint64
	var b8 [8]byte
	for i := uint64(0); i <= h.numTrials; i++ {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated boundary %d: %v", ErrCorrupt, i, err)
		}
		v := binary.LittleEndian.Uint64(b8[:])
		if i == 0 && v != 0 {
			return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
		}
		if v < prev {
			return nil, fmt.Errorf("%w: boundaries not monotone at %d", ErrCorrupt, i)
		}
		if v > h.numOcc {
			return nil, fmt.Errorf("%w: boundary %d exceeds occurrence count", ErrCorrupt, i)
		}
		bounds = append(bounds, v)
		prev = v
	}
	if bounds[h.numTrials] != h.numOcc {
		return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
	}
	return bounds, nil
}

// payloadDecoder appends trial payloads of one format version to a
// table's columns, validating timestamps as they arrive.
type payloadDecoder struct {
	br      *bufio.Reader
	version uint32
	scratch []byte
}

// checkTime enforces the table invariant on one decoded timestamp.
func checkTime(tm float64, occ uint64) error {
	if math.IsNaN(tm) || tm < 0 || tm >= 1 {
		return fmt.Errorf("%w: timestamp %v at occurrence %d", ErrCorrupt, tm, occ)
	}
	return nil
}

// readTrial decodes the next trial's n occurrences (numbered from base
// in error messages) and appends them to t's columns.
func (d *payloadDecoder) readTrial(t *Table, n uint64, base uint64) error {
	if d.version == versionAoS {
		var rec [16]byte
		for i := uint64(0); i < n; i++ {
			if _, err := io.ReadFull(d.br, rec[:]); err != nil {
				return fmt.Errorf("%w: truncated at occurrence %d: %v", ErrCorrupt, base+i, err)
			}
			tm := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
			if err := checkTime(tm, base+i); err != nil {
				return err
			}
			t.events = append(t.events, binary.LittleEndian.Uint32(rec[0:4]))
			t.times = append(t.times, tm)
		}
		return nil
	}
	// v2: the trial's event column, then its time column. Decoding is
	// chunked so a hostile header cannot force a large allocation
	// before its bytes actually arrive.
	const chunkOcc = 1 << 16
	for done := uint64(0); done < n; {
		c := min64(n-done, chunkOcc)
		if cap(d.scratch) < int(c*4) {
			d.scratch = make([]byte, c*4)
		}
		buf := d.scratch[:c*4]
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return fmt.Errorf("%w: truncated events at occurrence %d: %v", ErrCorrupt, base+done, err)
		}
		for i := uint64(0); i < c; i++ {
			t.events = append(t.events, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		done += c
	}
	for done := uint64(0); done < n; {
		c := min64(n-done, chunkOcc)
		if cap(d.scratch) < int(c*8) {
			d.scratch = make([]byte, c*8)
		}
		buf := d.scratch[:c*8]
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return fmt.Errorf("%w: truncated times at occurrence %d: %v", ErrCorrupt, base+done, err)
		}
		for i := uint64(0); i < c; i++ {
			tm := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			if err := checkTime(tm, base+done+i); err != nil {
				return err
			}
			t.times = append(t.times, tm)
		}
		done += c
	}
	return nil
}

// Read deserialises a table written by WriteTo (current or v1 format),
// validating structure.
func Read(rd io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(rd, 1<<20)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	bounds, err := readBounds(br, h)
	if err != nil {
		return nil, err
	}
	// Never trust the header for up-front allocation: grow buffers only
	// as bytes actually arrive, so a corrupt or hostile header cannot
	// trigger a huge allocation.
	const preallocCap = 1 << 20
	t := &Table{
		bounds: bounds,
		events: make([]uint32, 0, min64(h.numOcc, preallocCap)),
		times:  make([]float64, 0, min64(h.numOcc, preallocCap)),
	}
	dec := &payloadDecoder{br: br, version: h.version}
	for i := uint64(0); i < h.numTrials; i++ {
		if err := dec.readTrial(t, bounds[i+1]-bounds[i], bounds[i]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// occurrenceSize is the packed size of one row-view Occurrence, asserted
// in tests to guard the memory math of row-oriented consumers.
const occurrenceSize = unsafe.Sizeof(Occurrence{})
