// Package yet implements the Year Event Table: the database of
// pre-simulated years that gives aggregate analysis its consistent lens
// (paper §II.A.1).
//
// Each trial Ti is an ordered sequence of (event ID, timestamp) pairs —
// one alternative view of which events occur within a contractual year and
// in which order. A production YET holds thousands to millions of trials
// of roughly 800-1500 occurrences each.
//
// The in-memory layout mirrors the paper's basic implementation (§III.B.1):
// a single flat vector of event occurrences plus a vector of trial
// boundaries, so the engine streams trials with perfect locality and the
// table can be memory-mapped or serialised wholesale.
//
// The package covers the table's full lifecycle:
//
//   - Generate builds synthetic tables (Poisson or negative-binomial
//     occurrence counts, optional seasonal timestamps), deterministic in
//     the seed — trial i always comes from rng stream (seed, i), so a
//     table's Config doubles as its content identity (the ared service
//     caches generated tables under a hash of it).
//   - Table.WriteTo / Read serialise a table in the package's binary
//     format.
//   - Reader decodes that format incrementally — header and trial
//     boundaries eagerly, payloads in caller-sized batches — which is
//     what lets the engine's streaming pipeline analyse tables far
//     larger than memory (see stream.go and core.NewStreamSource).
package yet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"unsafe"

	"github.com/ralab/are/internal/catalog"
	"github.com/ralab/are/internal/rng"
	"github.com/ralab/are/internal/stats"
)

// Occurrence is one (event, timestamp) pair within a trial. Time is the
// fraction of the contractual year elapsed, in [0, 1).
type Occurrence struct {
	Event catalog.EventID
	_     uint32 // padding: keeps Time 8-byte aligned in the flat slice
	Time  float64
}

// Table is a packed Year Event Table.
type Table struct {
	occ    []Occurrence // all trials, concatenated
	bounds []uint64     // len = NumTrials+1; trial i is occ[bounds[i]:bounds[i+1]]
}

// Config controls YET generation.
type Config struct {
	Seed   uint64
	Trials int

	// MeanEvents is the expected number of occurrences per trial (the
	// catalog-wide annual rate). Per-trial counts are Poisson around it.
	// The paper's range is 800-1500.
	MeanEvents float64

	// FixedEvents, when > 0, forces every trial to exactly this many
	// occurrences, which the performance figures use to control problem
	// size precisely.
	FixedEvents int

	// Dispersion, when > 1, switches per-trial occurrence counts from
	// Poisson to negative binomial with variance = Dispersion x mean,
	// modelling the year-to-year clustering (active vs quiet seasons)
	// real catalogs exhibit. 0 or 1 keeps Poisson counts.
	Dispersion float64

	// Seasonal, when true, draws timestamps from a peril-appropriate
	// within-year distribution instead of uniform: occurrences bunch in
	// season (e.g. hurricanes concentrated mid-year). Requires the
	// EventSource to implement PerilSource; otherwise a single shared
	// seasonal profile is used.
	Seasonal bool
}

// Validation errors.
var (
	ErrNoTrials  = errors.New("yet: Trials must be positive")
	ErrNoEvents  = errors.New("yet: MeanEvents or FixedEvents must be positive")
	ErrNilSource = errors.New("yet: event source must be non-nil")
)

// EventSource abstracts "draw the next occurring event", normally a
// *catalog.Catalog.
type EventSource interface {
	Draw(r *rng.Rand) catalog.EventID
	NumEvents() int
}

// uniformSource draws event IDs uniformly from [0, n); used when sampling
// should not be rate-weighted (synthetic benchmarks).
type uniformSource struct{ n int }

func (u uniformSource) Draw(r *rng.Rand) catalog.EventID {
	return catalog.EventID(r.Intn(u.n))
}
func (u uniformSource) NumEvents() int { return u.n }

// UniformSource returns an EventSource drawing uniformly from a catalog of
// n events.
func UniformSource(n int) EventSource { return uniformSource{n: n} }

// Generate builds a YET by simulating Trials years. Each trial's
// occurrence count is Poisson(MeanEvents) (or FixedEvents), events are
// drawn from src, and timestamps are uniform over the year and sorted
// ascending — the ordered-set structure the aggregate terms rely on.
// Trial i is generated from rng stream (Seed, i), so the table content is
// independent of generation order and may be parallelised.
func Generate(src EventSource, cfg Config) (*Table, error) {
	return GenerateRange(src, cfg, 0, cfg.Trials)
}

// ErrBadRange rejects shard bounds outside [0, Trials].
var ErrBadRange = errors.New("yet: generation range outside [0, Trials]")

// GenerateRange builds only trials [lo, hi) of the table Generate would
// build from the same config: because trial i is a pure function of
// (Seed, i), the shard's trial t is bitwise identical to trial lo+t of
// the full table. This is what lets a distributed worker materialise
// exactly its shard of a job's YET — O(hi-lo) memory and work, no
// coordination — while the cluster's merged result still reproduces the
// single-node run exactly.
func GenerateRange(src EventSource, cfg Config, lo, hi int) (*Table, error) {
	if src == nil {
		return nil, ErrNilSource
	}
	if cfg.Trials <= 0 {
		return nil, ErrNoTrials
	}
	if cfg.MeanEvents <= 0 && cfg.FixedEvents <= 0 {
		return nil, ErrNoEvents
	}
	if lo < 0 || hi > cfg.Trials || lo >= hi {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrBadRange, lo, hi, cfg.Trials)
	}
	n := hi - lo
	t := &Table{bounds: make([]uint64, 1, n+1)}
	expect := cfg.MeanEvents
	if cfg.FixedEvents > 0 {
		expect = float64(cfg.FixedEvents)
	}
	t.occ = make([]Occurrence, 0, int(float64(n)*expect*11/10))
	perils, _ := src.(PerilSource)
	for i := lo; i < hi; i++ {
		r := rng.At(cfg.Seed, uint64(i))
		n := cfg.FixedEvents
		if n <= 0 {
			if cfg.Dispersion > 1 {
				n = negBinomial(r, cfg.MeanEvents, cfg.Dispersion)
			} else {
				n = stats.Poisson(r, cfg.MeanEvents)
			}
		}
		start := len(t.occ)
		for j := 0; j < n; j++ {
			ev := src.Draw(r)
			tm := r.Float64()
			if cfg.Seasonal {
				p := catalog.Hurricane
				if perils != nil {
					p = perils.PerilOf(ev)
				}
				tm = seasonalTime(r, p)
			}
			t.occ = append(t.occ, Occurrence{Event: ev, Time: tm})
		}
		trial := t.occ[start:]
		sort.Slice(trial, func(a, b int) bool { return trial[a].Time < trial[b].Time })
		t.bounds = append(t.bounds, uint64(len(t.occ)))
	}
	return t, nil
}

// PerilSource is optionally implemented by event sources that can report
// an event's peril, enabling peril-specific seasonality.
type PerilSource interface {
	PerilOf(id catalog.EventID) catalog.Peril
}

// negBinomial draws a negative binomial count with the given mean and
// variance-to-mean ratio d > 1, via the gamma-Poisson mixture:
// lambda ~ Gamma(shape=mean/(d-1), scale=d-1), N ~ Poisson(lambda).
func negBinomial(r *rng.Rand, mean, d float64) int {
	shape := mean / (d - 1)
	lambda := stats.Gamma(r, shape, d-1)
	return stats.Poisson(r, lambda)
}

// seasonalTime draws a within-year timestamp from the peril's seasonal
// profile: peaked mid-season for hurricanes and tornadoes, winter-peaked
// for winter storms, broad for floods, uniform for earthquakes. The
// result is clamped into [0, 1) to honour the table invariant.
func seasonalTime(r *rng.Rand, p catalog.Peril) float64 {
	t := rawSeasonalTime(r, p)
	if t >= 1 {
		t = math.Nextafter(1, 0)
	}
	if t < 0 {
		t = 0
	}
	return t
}

func rawSeasonalTime(r *rng.Rand, p catalog.Peril) float64 {
	switch p {
	case catalog.Hurricane:
		// Aug-Oct peak: Beta centred around 0.7 of the year.
		return stats.Beta(r, 9, 4)
	case catalog.Tornado:
		// Spring peak.
		return stats.Beta(r, 4, 7)
	case catalog.WinterStorm:
		// Bimodal at the year's edges: reflect a summer-peaked Beta.
		x := stats.Beta(r, 6, 6)
		x += 0.5
		if x >= 1 {
			x -= 1
		}
		return x
	case catalog.Flood:
		return stats.Beta(r, 2, 2)
	default: // earthquakes and unknown perils have no season
		return r.Float64()
	}
}

// NumTrials returns the number of trials.
func (t *Table) NumTrials() int { return len(t.bounds) - 1 }

// NumOccurrences returns the total number of event occurrences.
func (t *Table) NumOccurrences() int { return len(t.occ) }

// Trial returns the occurrence slice for trial i (shared storage; callers
// must not modify it).
func (t *Table) Trial(i int) []Occurrence {
	return t.occ[t.bounds[i]:t.bounds[i+1]]
}

// MeanTrialLen returns the average occurrences per trial.
func (t *Table) MeanTrialLen() float64 {
	if t.NumTrials() == 0 {
		return 0
	}
	return float64(len(t.occ)) / float64(t.NumTrials())
}

// Slice returns a view containing trials [lo, hi) that shares storage with
// t; used to partition work across engine workers.
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 || hi > t.NumTrials() || lo > hi {
		panic(fmt.Sprintf("yet: bad slice [%d,%d) of %d trials", lo, hi, t.NumTrials()))
	}
	base := t.bounds[lo]
	bounds := make([]uint64, hi-lo+1)
	for i := range bounds {
		bounds[i] = t.bounds[lo+i] - base
	}
	return &Table{occ: t.occ[base:t.bounds[hi]], bounds: bounds}
}

// ---------------------------------------------------------------------------
// Binary serialisation. Format:
//
//	magic  "YETB"            4 bytes
//	version uint32           little endian
//	numTrials uint64
//	numOcc    uint64
//	bounds    (numTrials+1) x uint64
//	occ       numOcc x { event uint32, pad uint32, time float64 }

const (
	magic   = "YETB"
	version = 1
)

// Serialisation errors.
var (
	ErrBadMagic   = errors.New("yet: bad magic (not a YET file)")
	ErrBadVersion = errors.New("yet: unsupported version")
	ErrCorrupt    = errors.New("yet: corrupt table data")
)

// WriteTo serialises the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += 4
	if err := write(uint32(version)); err != nil {
		return n, err
	}
	if err := write(uint64(t.NumTrials())); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.occ))); err != nil {
		return n, err
	}
	if err := write(t.bounds); err != nil {
		return n, err
	}
	for i := range t.occ {
		if err := write(uint32(t.occ[i].Event)); err != nil {
			return n, err
		}
		if err := write(uint32(0)); err != nil {
			return n, err
		}
		if err := write(math.Float64bits(t.occ[i].Time)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserialises a table written by WriteTo, validating structure.
func Read(rd io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(rd, 1<<20)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(mg[:]) != magic {
		return nil, ErrBadMagic
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var numTrials, numOcc uint64
	if err := binary.Read(br, binary.LittleEndian, &numTrials); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &numOcc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	const maxReasonable = 1 << 40
	if numTrials >= maxReasonable || numOcc >= maxReasonable {
		return nil, fmt.Errorf("%w: implausible sizes trials=%d occ=%d", ErrCorrupt, numTrials, numOcc)
	}
	// Never trust the header for up-front allocation: grow buffers only
	// as bytes actually arrive, so a corrupt or hostile header cannot
	// trigger a huge allocation.
	const preallocCap = 1 << 20
	t := &Table{
		bounds: make([]uint64, 0, min64(numTrials+1, preallocCap)),
		occ:    make([]Occurrence, 0, min64(numOcc, preallocCap)),
	}
	var prev uint64
	var b8 [8]byte
	for i := uint64(0); i <= numTrials; i++ {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated boundary %d: %v", ErrCorrupt, i, err)
		}
		v := binary.LittleEndian.Uint64(b8[:])
		if i == 0 && v != 0 {
			return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
		}
		if v < prev {
			return nil, fmt.Errorf("%w: boundaries not monotone at %d", ErrCorrupt, i)
		}
		if v > numOcc {
			return nil, fmt.Errorf("%w: boundary %d exceeds occurrence count", ErrCorrupt, i)
		}
		t.bounds = append(t.bounds, v)
		prev = v
	}
	if t.bounds[numTrials] != numOcc {
		return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
	}
	var rec [16]byte
	for i := uint64(0); i < numOcc; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at occurrence %d: %v", ErrCorrupt, i, err)
		}
		ev := binary.LittleEndian.Uint32(rec[0:4])
		tm := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		if math.IsNaN(tm) || tm < 0 || tm >= 1 {
			return nil, fmt.Errorf("%w: timestamp %v at occurrence %d", ErrCorrupt, tm, i)
		}
		t.occ = append(t.occ, Occurrence{Event: catalog.EventID(ev), Time: tm})
	}
	return t, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// occurrenceSize is the packed size of one Occurrence, asserted in tests
// to guard the flat-layout memory math.
const occurrenceSize = unsafe.Sizeof(Occurrence{})
