package yet

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func serialise(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderBatchesMatchTable(t *testing.T) {
	tab := genTable(t, Config{Seed: 31, Trials: 57, MeanEvents: 20}, 1000)
	data := serialise(t, tab)
	for _, batch := range []int{1, 5, 57, 100} {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if rd.NumTrials() != 57 {
			t.Fatalf("NumTrials = %d", rd.NumTrials())
		}
		idx := 0
		for !rd.Done() {
			if rd.Offset() != idx {
				t.Fatalf("Offset = %d, want %d", rd.Offset(), idx)
			}
			got, err := rd.ReadBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < got.NumTrials(); i++ {
				want := tab.Trial(idx + i)
				have := got.Trial(i)
				if len(want) != len(have) {
					t.Fatalf("trial %d length mismatch", idx+i)
				}
				for j := range want {
					if want[j] != have[j] {
						t.Fatalf("trial %d occurrence %d differs", idx+i, j)
					}
				}
			}
			idx += got.NumTrials()
		}
		if idx != 57 {
			t.Fatalf("streamed %d trials", idx)
		}
		if _, err := rd.ReadBatch(batch); err != io.EOF {
			t.Fatalf("post-EOF ReadBatch err = %v", err)
		}
	}
}

func TestReaderRejectsCorruptHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	tab := genTable(t, Config{Seed: 32, Trials: 3, FixedEvents: 2}, 10)
	data := serialise(t, tab)
	data[4] = 9 // version
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestReaderRejectsTruncatedPayload(t *testing.T) {
	tab := genTable(t, Config{Seed: 33, Trials: 8, FixedEvents: 4}, 100)
	data := serialise(t, tab)
	rd, err := NewReader(bytes.NewReader(data[:len(data)-8]))
	if err != nil {
		t.Fatal(err) // header + bounds are intact
	}
	for {
		_, err = rd.ReadBatch(4)
		if err != nil {
			break
		}
	}
	if errors.Is(err, io.EOF) || err == nil {
		t.Fatalf("truncated payload not detected: %v", err)
	}
}

func TestReaderBadBatchSize(t *testing.T) {
	tab := genTable(t, Config{Seed: 34, Trials: 2, FixedEvents: 2}, 10)
	rd, err := NewReader(bytes.NewReader(serialise(t, tab)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadBatch(0); err == nil {
		t.Fatal("zero batch accepted")
	}
}
