package yet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file is the zero-copy loading path: Map serves a v2 file's
// columns directly out of a read-only page-cache mapping instead of
// decoding them onto the heap.
//
// The v2 layout makes that possible without any translation:
//
//   - The boundary vector starts at byte 24 (magic + version + two
//     uint64 counts), which is 8-aligned, so the mapped bytes ARE the
//     []uint64 bounds slice.
//   - The payload starts at 24 + 8*(numTrials+1), also 8-aligned, and
//     trial i's bytes begin 12*bounds[i] into it (each occurrence costs
//     4 event + 8 time bytes). The event column of trial i therefore
//     sits at a 4-aligned offset and is served as an unsafe []uint32
//     view — the kernels' hot accessor touches only mapped memory.
//   - Trial time columns are only guaranteed 4-aligned (4*n_i past a
//     4-aligned offset), so they cannot be viewed as []float64 portably.
//     Timestamps are cold — kernels never read them — so the whole time
//     column is decoded to the heap lazily, once per mapping, the first
//     time any view asks (sync.Once; concurrent jobs sharing the
//     mapping share the materialised column too).
//
// Version 1 files (interleaved AoS) and builds without an mmap backend
// fall back to the heap decoder, so Map is always safe to call.

// mapping owns one mmap'd YET file. All Table views cut from a Map'd
// table share the mapping; the last reference dropping triggers a
// finalizer munmap, and the root table's Close releases it eagerly.
type mapping struct {
	data    []byte   // the whole file
	payload []byte   // data[payloadStart:]
	bounds  []uint64 // unsafe view of the file's boundary vector

	timesOnce sync.Once
	times     []float64 // lazily materialised full time column
	closed    atomic.Bool
}

// trialEvents returns the event column of the trial whose occurrences
// span [abs, abs+n) in file order, as a view into the mapping.
func (m *mapping) trialEvents(abs, n uint64) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&m.payload[12*abs])), n)
}

// materialiseTimes decodes the full time column to the heap, once.
// Timestamps are the cold column — only report/oracle code reads them —
// so this is the one heap cost a mapped table ever pays, and N sharing
// views pay it once between them.
func (m *mapping) materialiseTimes() []float64 {
	m.timesOnce.Do(func() {
		total := m.bounds[len(m.bounds)-1]
		ts := make([]float64, 0, total)
		for i := 0; i < len(m.bounds)-1; i++ {
			lo, hi := m.bounds[i], m.bounds[i+1]
			off := 12*lo + 4*(hi-lo)
			for j := uint64(0); j < hi-lo; j++ {
				ts = append(ts, math.Float64frombits(binary.LittleEndian.Uint64(m.payload[off+8*j:])))
			}
		}
		m.times = ts
	})
	return m.times
}

// close releases the mapping. Idempotent; later column access through a
// closed mapping faults, so only the owner (artifact cache, test) may
// call it and only once no views remain in flight.
func (m *mapping) close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	data := m.data
	m.data, m.payload, m.bounds = nil, nil, nil
	return munmapFile(data)
}

// headerSize is the fixed prefix before the boundary vector: magic,
// version uint32, numTrials uint64, numOcc uint64.
const headerSize = 24

// Map opens a serialised YET and serves it without decoding: v2 files
// on platforms with an mmap backend come back as page-cache-backed
// views (Mapped() == true) whose event columns alias the file bytes;
// v1 files and nommap builds transparently fall back to the heap
// decoder. The returned table and every Slice cut from it share one
// mapping, released by a finalizer or an explicit Close on the root.
func Map(path string) (*Table, error) {
	if !mmapSupported {
		return ReadFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := readHeader(bufio.NewReaderSize(f, headerSize+8))
	if err != nil {
		return nil, err
	}
	if h.version != version {
		// v1 interleaves each occurrence's event and time, so there is
		// no contiguous event column to view; decode it.
		return ReadFile(path)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	payloadStart := int64(headerSize) + 8*int64(h.numTrials+1)
	want := payloadStart + 12*int64(h.numOcc)
	if fi.Size() != want {
		return nil, fmt.Errorf("%w: file is %d bytes, v2 header implies %d", ErrCorrupt, fi.Size(), want)
	}
	data, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("yet: mmap %s: %w", path, err)
	}
	m := &mapping{
		data:    data,
		payload: data[payloadStart:],
		bounds:  unsafe.Slice((*uint64)(unsafe.Pointer(&data[headerSize])), h.numTrials+1),
	}
	if err := checkBounds(m.bounds, h.numOcc); err != nil {
		munmapFile(data)
		return nil, err
	}
	runtime.SetFinalizer(m, func(m *mapping) { m.close() })
	return &Table{bounds: m.bounds, m: m, owns: true}, nil
}

// checkBounds validates a boundary vector already in memory: zero
// start, monotone, ending exactly at the occurrence count.
func checkBounds(bounds []uint64, numOcc uint64) error {
	if bounds[0] != 0 || bounds[len(bounds)-1] != numOcc {
		return fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return fmt.Errorf("%w: boundaries not monotone at %d", ErrCorrupt, i)
		}
	}
	return nil
}

// Mapped reports whether the table's columns are served from an mmap'd
// file rather than heap slices.
func (t *Table) Mapped() bool { return t.m != nil }

// Close releases the table's file mapping, if it owns one. Tables from
// Generate/Read and Slice views do not own a mapping and return nil;
// for them (and for forgotten root tables) the finalizer cleans up.
// After Close, column access through the table or any surviving view
// faults — the caller owns that ordering.
func (t *Table) Close() error {
	if t.m == nil || !t.owns {
		return nil
	}
	return t.m.close()
}

// ReadFile decodes a serialised YET from disk onto the heap — the
// portable counterpart of Map, accepting both format versions.
func ReadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile atomically serialises the table to path in the current
// format: it writes a temp file in the same directory, fsyncs, and
// renames into place, so a concurrent Map never observes a torn file.
func WriteFile(path string, t *Table) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := t.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
