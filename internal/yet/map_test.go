package yet

// Oracle coverage for the zero-copy loader: Map must be observationally
// identical — bitwise, through every accessor — to the heap decoder on
// the same file, across both format versions, with empty trials, under
// slicing, and under concurrent access; truncated files must be
// rejected on both the mmap and the fallback path.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// viewsEqual compares two tables through the public accessors only, so
// it works across backings (heap vs mapped), trial by trial and bit by
// bit.
func viewsEqual(t *testing.T, a, b *Table, context string) {
	t.Helper()
	if a.NumTrials() != b.NumTrials() || a.NumOccurrences() != b.NumOccurrences() {
		t.Fatalf("%s: shape mismatch: %d/%d trials, %d/%d occ", context,
			a.NumTrials(), b.NumTrials(), a.NumOccurrences(), b.NumOccurrences())
	}
	for i := 0; i < a.NumTrials(); i++ {
		ae, be := a.TrialEvents(i), b.TrialEvents(i)
		at, bt := a.TrialTimes(i), b.TrialTimes(i)
		if len(ae) != len(be) || len(at) != len(bt) || len(ae) != len(at) {
			t.Fatalf("%s: trial %d length mismatch", context, i)
		}
		for j := range ae {
			if ae[j] != be[j] {
				t.Fatalf("%s: trial %d event %d differs", context, i, j)
			}
			if math.Float64bits(at[j]) != math.Float64bits(bt[j]) {
				t.Fatalf("%s: trial %d time %d differs", context, i, j)
			}
		}
	}
}

// writeTemp serialises tab to a file in the test's temp dir.
func writeTemp(t *testing.T, tab *Table, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := WriteFile(path, tab); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMapMatchesReadBitwise: the mapped view of a v2 file is bitwise
// identical to the heap decode of the same file, including a config
// with many empty trials, and WriteTo of the mapped table reproduces
// the original file byte for byte.
func TestMapMatchesReadBitwise(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 91, Trials: 60, MeanEvents: 25},
		{Seed: 92, Trials: 100, MeanEvents: 0.6}, // many empty trials
		{Seed: 93, Trials: 12, FixedEvents: 150, Seasonal: true},
	} {
		gen := genTable(t, cfg, 2000)
		path := writeTemp(t, gen, "tab.yet")
		heap, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := Map(path)
		if err != nil {
			t.Fatal(err)
		}
		if mapped.Mapped() != mmapSupported {
			t.Fatalf("Mapped() = %v on a v2 file, mmapSupported = %v", mapped.Mapped(), mmapSupported)
		}
		viewsEqual(t, mapped, heap, "map vs read")
		viewsEqual(t, mapped, gen, "map vs generate")

		var out bytes.Buffer
		if _, err := mapped.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), orig) {
			t.Fatal("WriteTo of mapped table is not byte-identical to its file")
		}
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMapSliceViews: Slice views of a mapped table (including views of
// views and empty views) match the heap table's views exactly and
// share the parent mapping.
func TestMapSliceViews(t *testing.T) {
	gen := genTable(t, Config{Seed: 94, Trials: 64, MeanEvents: 10}, 1500)
	path := writeTemp(t, gen, "tab.yet")
	mapped, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, r := range [][2]int{{0, 64}, {0, 17}, {17, 48}, {48, 64}, {30, 30}} {
		mv, hv := mapped.Slice(r[0], r[1]), gen.Slice(r[0], r[1])
		viewsEqual(t, mv, hv, "slice view")
		if mmapSupported && r[1] > r[0] && !mv.Mapped() {
			t.Fatal("slice of mapped table lost its mapping")
		}
		if mv.NumTrials() > 4 {
			viewsEqual(t, mv.Slice(1, mv.NumTrials()-1), hv.Slice(1, hv.NumTrials()-1), "nested slice")
		}
	}
}

// TestMapV1FallsBack: a legacy v1 file loads through Map via the heap
// decoder (no contiguous event column exists to view) with identical
// content.
func TestMapV1FallsBack(t *testing.T) {
	gen := genTable(t, Config{Seed: 95, Trials: 30, MeanEvents: 12}, 800)
	path := filepath.Join(t.TempDir(), "v1.yet")
	if err := os.WriteFile(path, writeV1(t, gen), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapped() {
		t.Fatal("v1 file came back mapped")
	}
	viewsEqual(t, got, gen, "v1 via Map")
}

// TestMapTruncatedRejected: files cut inside the header, the boundary
// vector or the payload must all fail Map with an error on both the
// mmap and the nommap build.
func TestMapTruncatedRejected(t *testing.T) {
	gen := genTable(t, Config{Seed: 96, Trials: 8, FixedEvents: 5}, 200)
	full := writeTemp(t, gen, "tab.yet")
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 12, headerSize + 4, len(data) - 1, len(data) / 2} {
		path := filepath.Join(t.TempDir(), "cut.yet")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Map(path); err == nil {
			t.Fatalf("Map accepted a file truncated at byte %d", cut)
		}
	}
	// Trailing garbage is as corrupt as truncation on the mapped path.
	if mmapSupported {
		path := filepath.Join(t.TempDir(), "long.yet")
		if err := os.WriteFile(path, append(append([]byte{}, data...), 0xFF), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Map(path); err == nil {
			t.Fatal("Map accepted a v2 file with trailing bytes")
		}
	}
}

// TestMapMissingFile: Map surfaces the open error.
func TestMapMissingFile(t *testing.T) {
	if _, err := Map(filepath.Join(t.TempDir(), "absent.yet")); err == nil {
		t.Fatal("Map of a missing file succeeded")
	}
}

// TestMapConcurrentTimes: many goroutines racing to be the first
// TrialTimes caller on one shared mapping all observe the same
// materialised column (the -race build checks the synchronisation).
func TestMapConcurrentTimes(t *testing.T) {
	gen := genTable(t, Config{Seed: 97, Trials: 40, MeanEvents: 8}, 600)
	mapped, err := Map(writeTemp(t, gen, "tab.yet"))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < mapped.NumTrials(); i++ {
				want, got := gen.TrialTimes(i), mapped.TrialTimes(i)
				for j := range want {
					if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
						t.Errorf("trial %d time %d differs", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
