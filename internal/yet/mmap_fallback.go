//go:build !((linux || darwin) && !nommap)

package yet

import (
	"errors"
	"os"
)

// mmapSupported is false on platforms without the mmap backend and on
// any build with the nommap tag; Map degrades to ReadFile there.
const mmapSupported = false

var errNoMmap = errors.New("yet: mmap not supported in this build")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(b []byte) error { return errNoMmap }
