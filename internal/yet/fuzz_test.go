package yet

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the binary reader: it must reject or
// accept without panicking, and anything it accepts must be structurally
// sound (failure injection for the deserialiser).
func FuzzRead(f *testing.F) {
	// Seed with a valid table and a few mutations.
	tab, err := Generate(UniformSource(100), Config{Seed: 1, Trials: 4, FixedEvents: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("YETB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted tables must be self-consistent.
		n := got.NumTrials()
		total := 0
		for i := 0; i < n; i++ {
			trial := got.Trial(i) // must not panic
			total += len(trial)
			for _, o := range trial {
				if o.Time < 0 || o.Time >= 1 {
					t.Fatalf("accepted table has timestamp %v", o.Time)
				}
			}
		}
		if total != got.NumOccurrences() {
			t.Fatalf("boundaries inconsistent: %d vs %d", total, got.NumOccurrences())
		}
	})
}
