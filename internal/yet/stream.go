package yet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/ralab/are/internal/catalog"
)

// Reader streams a serialised YET trial-by-trial without materialising
// the whole table: a paper-size YET (1M trials x 1000 events) is ~16 GB
// on disk, which the paper's preprocessing stage loads wholesale; the
// streaming reader lets the engine analyse tables larger than memory in
// bounded batches.
type Reader struct {
	br     *bufio.Reader
	bounds []uint64 // full boundary vector (8 bytes/trial; ~8 MB for 1M trials)
	next   int      // next trial index to read
}

// NewReader parses the header and boundary vector and positions the
// stream at the first trial.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(mg[:]) != magic {
		return nil, ErrBadMagic
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var numTrials, numOcc uint64
	if err := binary.Read(br, binary.LittleEndian, &numTrials); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &numOcc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	const maxReasonable = 1 << 40
	if numTrials >= maxReasonable || numOcc >= maxReasonable {
		return nil, fmt.Errorf("%w: implausible sizes trials=%d occ=%d", ErrCorrupt, numTrials, numOcc)
	}
	rd := &Reader{br: br, bounds: make([]uint64, 0, min64(numTrials+1, 1<<20))}
	var prev uint64
	var b8 [8]byte
	for i := uint64(0); i <= numTrials; i++ {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated boundary %d: %v", ErrCorrupt, i, err)
		}
		v := binary.LittleEndian.Uint64(b8[:])
		if i == 0 && v != 0 {
			return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
		}
		if v < prev || v > numOcc {
			return nil, fmt.Errorf("%w: boundary %d invalid", ErrCorrupt, i)
		}
		rd.bounds = append(rd.bounds, v)
		prev = v
	}
	if rd.bounds[numTrials] != numOcc {
		return nil, fmt.Errorf("%w: boundary vector endpoints", ErrCorrupt)
	}
	return rd, nil
}

// NumTrials returns the total trial count declared by the stream.
func (r *Reader) NumTrials() int { return len(r.bounds) - 1 }

// NumOccurrences returns the total occurrence count declared by the
// stream (the validated endpoint of the boundary vector).
func (r *Reader) NumOccurrences() int { return int(r.bounds[len(r.bounds)-1]) }

// MeanTrialLen returns the average occurrences per trial declared by
// the stream header, available before any trial payload is decoded —
// the engine uses it to size worker scratch buffers.
func (r *Reader) MeanTrialLen() float64 {
	if r.NumTrials() == 0 {
		return 0
	}
	return float64(r.NumOccurrences()) / float64(r.NumTrials())
}

// Done reports whether all trials have been read.
func (r *Reader) Done() bool { return r.next >= r.NumTrials() }

// Offset returns the index of the next trial ReadBatch will return.
func (r *Reader) Offset() int { return r.next }

// ReadBatch reads up to maxTrials further trials into a standalone Table.
// It returns io.EOF when the stream is exhausted.
func (r *Reader) ReadBatch(maxTrials int) (*Table, error) {
	if maxTrials <= 0 {
		return nil, fmt.Errorf("yet: batch size must be positive")
	}
	if r.Done() {
		return nil, io.EOF
	}
	lo := r.next
	hi := lo + maxTrials
	if hi > r.NumTrials() {
		hi = r.NumTrials()
	}
	base := r.bounds[lo]
	count := r.bounds[hi] - base
	t := &Table{
		occ:    make([]Occurrence, 0, count),
		bounds: make([]uint64, hi-lo+1),
	}
	for i := range t.bounds {
		t.bounds[i] = r.bounds[lo+i] - base
	}
	var rec [16]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r.br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at occurrence %d: %v", ErrCorrupt, base+i, err)
		}
		ev := binary.LittleEndian.Uint32(rec[0:4])
		tm := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		if math.IsNaN(tm) || tm < 0 || tm >= 1 {
			return nil, fmt.Errorf("%w: timestamp %v at occurrence %d", ErrCorrupt, tm, base+i)
		}
		t.occ = append(t.occ, Occurrence{Event: catalog.EventID(ev), Time: tm})
	}
	r.next = hi
	return t, nil
}
