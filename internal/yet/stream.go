package yet

import (
	"bufio"
	"fmt"
	"io"
)

// Reader streams a serialised YET trial-by-trial without materialising
// the whole table: a paper-size YET (1M trials x 1000 events) is ~12 GB
// on disk in the v2 columnar format (~16 GB in v1), which the paper's
// preprocessing stage loads wholesale; the streaming reader lets the
// engine analyse tables larger than memory in bounded batches. Both
// format versions stream: v2 groups each trial's event and time columns
// so a batch decodes straight into the columnar in-memory layout.
type Reader struct {
	dec    payloadDecoder
	bounds []uint64 // full boundary vector (8 bytes/trial; ~8 MB for 1M trials)
	next   int      // next trial index to read
}

// NewReader parses the header and boundary vector and positions the
// stream at the first trial. Both format versions (v2 columnar, v1
// interleaved) are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	bounds, err := readBounds(br, h)
	if err != nil {
		return nil, err
	}
	return &Reader{dec: payloadDecoder{br: br, version: h.version}, bounds: bounds}, nil
}

// Version reports the format version of the underlying stream.
func (r *Reader) Version() int { return int(r.dec.version) }

// NumTrials returns the total trial count declared by the stream.
func (r *Reader) NumTrials() int { return len(r.bounds) - 1 }

// NumOccurrences returns the total occurrence count declared by the
// stream (the validated endpoint of the boundary vector).
func (r *Reader) NumOccurrences() int { return int(r.bounds[len(r.bounds)-1]) }

// MeanTrialLen returns the average occurrences per trial declared by
// the stream header, available before any trial payload is decoded —
// the engine uses it to size worker scratch buffers.
func (r *Reader) MeanTrialLen() float64 {
	if r.NumTrials() == 0 {
		return 0
	}
	return float64(r.NumOccurrences()) / float64(r.NumTrials())
}

// Done reports whether all trials have been read.
func (r *Reader) Done() bool { return r.next >= r.NumTrials() }

// Offset returns the index of the next trial ReadBatch will return.
func (r *Reader) Offset() int { return r.next }

// ReadBatch reads up to maxTrials further trials into a standalone Table.
// It returns io.EOF when the stream is exhausted.
func (r *Reader) ReadBatch(maxTrials int) (*Table, error) {
	if maxTrials <= 0 {
		return nil, fmt.Errorf("yet: batch size must be positive")
	}
	if r.Done() {
		return nil, io.EOF
	}
	lo := r.next
	hi := lo + maxTrials
	if hi > r.NumTrials() {
		hi = r.NumTrials()
	}
	base := r.bounds[lo]
	count := r.bounds[hi] - base
	t := &Table{
		events: make([]uint32, 0, count),
		times:  make([]float64, 0, count),
		bounds: make([]uint64, hi-lo+1),
	}
	for i := range t.bounds {
		t.bounds[i] = r.bounds[lo+i] - base
	}
	for i := lo; i < hi; i++ {
		n := r.bounds[i+1] - r.bounds[i]
		if err := r.dec.readTrial(t, n, r.bounds[i]); err != nil {
			return nil, err
		}
	}
	r.next = hi
	return t, nil
}
