package are_test

import (
	"fmt"

	are "github.com/ralab/are"
)

// The smallest complete analysis: synthetic portfolio, synthetic YET,
// engine run, headline metric.
func Example() {
	portfolio, err := are.GeneratePortfolio(are.PortfolioConfig{
		Seed: 1, NumLayers: 1, ELTsPerLayer: 5,
		RecordsPerELT: 1000, CatalogSize: 50000,
	})
	if err != nil {
		panic(err)
	}
	yet, err := are.GenerateYET(are.UniformEvents(50000), are.YETConfig{
		Seed: 2, Trials: 2000, MeanEvents: 500,
	})
	if err != nil {
		panic(err)
	}
	engine, err := are.NewEngine(portfolio, 50000, are.LookupDirect)
	if err != nil {
		panic(err)
	}
	result, err := engine.Run(yet, are.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	summary, err := are.Summarise(result.YLT(0))
	if err != nil {
		panic(err)
	}
	fmt.Println(summary.Trials, "trials analysed; YLT mean positive:", summary.Mean > 0)
	// Output:
	// 2000 trials analysed; YLT mean positive: true
}

// Layer terms implement Table I of the paper: occurrence terms apply per
// event occurrence, aggregate terms to the running annual total.
func ExampleLayerTerms() {
	terms := are.LayerTerms{
		OccRetention: 100, OccLimit: 500,
		AggRetention: 1000, AggLimit: 2000,
	}
	fmt.Println(terms.ApplyOcc(50))   // below retention
	fmt.Println(terms.ApplyOcc(300))  // in the layer
	fmt.Println(terms.ApplyOcc(5000)) // capped at the occurrence limit
	fmt.Println(terms.ApplyAgg(1500)) // annual total net of agg retention
	// Output:
	// 0
	// 200
	// 500
	// 500
}

// Financial terms transform every loss taken from an ELT: currency,
// per-event retention/limit, then participation.
func ExampleFinancialTerms() {
	terms := are.FinancialTerms{
		FX: 2, EventRetention: 10, EventLimit: 100, Participation: 0.5,
	}
	fmt.Println(terms.Apply(30))  // 30*2-10 = 50, *0.5
	fmt.Println(terms.Apply(100)) // capped at the event limit, *0.5
	// Output:
	// 25
	// 50
}

// An exceedance-probability curve turns a YLT into the metrics a
// reinsurer reports: PML at return periods and tail value at risk.
func ExampleEPCurve() {
	ylt := make([]float64, 1000)
	for i := range ylt {
		ylt[i] = float64(i) // losses 0..999
	}
	curve, err := are.NewEPCurve(ylt)
	if err != nil {
		panic(err)
	}
	pml10, _ := curve.PML(10) // exceeded once in 10 years
	tvar99, _ := curve.TVaR(0.99)
	fmt.Printf("PML(10y) ~ %.0f, TVaR(99%%) ~ %.1f\n", pml10, tvar99)
	// Output:
	// PML(10y) ~ 899, TVaR(99%) ~ 994.5
}

// Secondary uncertainty (§IV extension): the annual aggregate loss of a
// Poisson frequency / discretised severity model via Panjer recursion.
func ExampleCompoundAnnualLoss() {
	severity, err := are.NewLossDist(100, []float64{0, 0.5, 0.3, 0.2})
	if err != nil {
		panic(err)
	}
	annual, err := are.CompoundAnnualLoss(2.0, severity, 256)
	if err != nil {
		panic(err)
	}
	fmt.Printf("E[annual] = %.0f (exact %.0f)\n", annual.Mean(), 2.0*severity.Mean())
	// Output:
	// E[annual] = 340 (exact 340)
}
