// Package are is the public API of the Aggregate Risk Engine: a parallel
// Monte Carlo engine for portfolio-level catastrophe risk analysis and
// pricing, reproducing Bahl, Baltzer, Rau-Chaplin and Varghese,
// "Parallel Simulations for Analysing Portfolios of Catastrophic Event
// Risk" (SC 2012 / arXiv:1308.2066).
//
// # Pipeline
//
// The package covers the full analytical pipeline of a quantitative
// reinsurer:
//
//  1. Risk assessment — a stochastic event catalog (Catalog) and exposure
//     databases (ExposureSet) are run through a catastrophe model
//     (BuildELT) to produce Event Loss Tables.
//  2. Portfolio risk management — layers (Layer) covering sets of ELTs
//     under occurrence/aggregate excess-of-loss terms are evaluated by
//     the engine (Engine.Run) against a pre-simulated Year Event Table
//     (YET), producing a Year Loss Table per layer.
//  3. Reporting and pricing — exceedance curves, PML and TVaR (EPCurve)
//     and premium quotes (Price) are derived from the YLTs.
//
// # Quickstart
//
//	portfolio, _ := are.GeneratePortfolio(are.PortfolioConfig{
//		Seed: 1, NumLayers: 1, ELTsPerLayer: 15,
//		RecordsPerELT: 20000, CatalogSize: 1000000,
//	})
//	yet, _ := are.GenerateYET(are.UniformEvents(1000000), are.YETConfig{
//		Seed: 2, Trials: 50000, MeanEvents: 1000,
//	})
//	engine, _ := are.NewEngine(portfolio, 1000000, are.LookupDirect)
//	result, _ := engine.Run(yet, are.Options{})
//	curve, _ := are.NewEPCurve(result.YLT(0))
//	pml100, _ := curve.PML(100)
//
// Synthetic generators stand in for the proprietary industrial data the
// paper used; every generator is deterministic in its seed, and all
// engine variants (sequential, parallel, chunked) produce bitwise
// identical results.
package are

import (
	"io"
	"math"

	"github.com/ralab/are/internal/catalog"
	"github.com/ralab/are/internal/catmodel"
	"github.com/ralab/are/internal/core"
	"github.com/ralab/are/internal/elt"
	"github.com/ralab/are/internal/exposure"
	"github.com/ralab/are/internal/financial"
	"github.com/ralab/are/internal/harness"
	"github.com/ralab/are/internal/layer"
	"github.com/ralab/are/internal/lossdist"
	"github.com/ralab/are/internal/metrics"
	"github.com/ralab/are/internal/pricing"
	"github.com/ralab/are/internal/report"
	"github.com/ralab/are/internal/spec"
	"github.com/ralab/are/internal/yet"
)

// ---------------------------------------------------------------------------
// Stage 1: catalog, exposure, catastrophe model, ELTs.

// Core domain types, re-exported for users of the public API.
type (
	// EventID identifies an event in the stochastic catalog.
	EventID = catalog.EventID
	// Peril is a catastrophe class (hurricane, earthquake, ...).
	Peril = catalog.Peril
	// Event is one synthetic catastrophe event.
	Event = catalog.Event
	// Catalog is a stochastic event catalog.
	Catalog = catalog.Catalog
	// CatalogConfig controls catalog generation.
	CatalogConfig = catalog.Config

	// ExposureSet is one cedant's insured portfolio of buildings.
	ExposureSet = exposure.Set
	// ExposureConfig controls exposure generation.
	ExposureConfig = exposure.Config
	// Building is a single insured risk.
	Building = exposure.Building

	// CatModelConfig controls the catastrophe model run.
	CatModelConfig = catmodel.Config

	// ELT is an Event Loss Table.
	ELT = elt.Table
	// ELTRecord is one event-loss pair.
	ELTRecord = elt.Record
	// ELTConfig controls synthetic ELT generation.
	ELTConfig = elt.GenConfig

	// FinancialTerms are the ELT-level terms I (FX, per-event
	// retention/limit, participation).
	FinancialTerms = financial.Terms
)

// Perils lists the modelled catastrophe classes.
func Perils() []Peril { return catalog.Perils() }

// GenerateCatalog builds a synthetic stochastic event catalog.
func GenerateCatalog(cfg CatalogConfig) (*Catalog, error) { return catalog.Generate(cfg) }

// GenerateExposure builds a synthetic exposure set.
func GenerateExposure(id uint32, cfg ExposureConfig) (*ExposureSet, error) {
	return exposure.Generate(id, cfg)
}

// BuildELT runs the catastrophe model for one exposure set against a
// catalog, producing its Event Loss Table.
func BuildELT(cat *Catalog, set *ExposureSet, terms FinancialTerms, eltID uint32, cfg CatModelConfig) (*ELT, error) {
	return catmodel.BuildELT(cat, set, terms, eltID, cfg)
}

// GenerateELT builds a synthetic ELT directly (without running the
// catastrophe model), matching the statistical shape the paper reports.
func GenerateELT(id uint32, cfg ELTConfig) (*ELT, error) { return elt.Generate(id, cfg) }

// NewELT builds an ELT from explicit records.
func NewELT(id uint32, terms FinancialTerms, records []ELTRecord) (*ELT, error) {
	return elt.New(id, terms, records)
}

// DefaultFinancialTerms returns pass-through financial terms.
func DefaultFinancialTerms() FinancialTerms { return financial.Default() }

// UnlimitedLoss is the sentinel for "no limit" in financial and layer
// terms.
var UnlimitedLoss = financial.Unlimited

// ---------------------------------------------------------------------------
// Stage 2: layers, YET, engine.

// Contract and simulation types, re-exported.
type (
	// Layer is one reinsurance contract over a set of ELTs.
	Layer = layer.Layer
	// LayerTerms is the tuple (TOccR, TOccL, TAggR, TAggL) of Table I.
	LayerTerms = layer.Terms
	// Portfolio is a book of layers.
	Portfolio = layer.Portfolio
	// PortfolioConfig controls synthetic portfolio generation.
	PortfolioConfig = layer.GenConfig

	// YET is a Year Event Table of pre-simulated trials.
	YET = yet.Table
	// YETConfig controls YET generation.
	YETConfig = yet.Config
	// EventSource supplies event draws for YET generation.
	EventSource = yet.EventSource
	// Occurrence is one (event, timestamp) pair in a trial.
	Occurrence = yet.Occurrence

	// Engine is a compiled portfolio ready to run against YETs.
	Engine = core.Engine
	// Options configures an engine run.
	Options = core.Options
	// Result holds the Year Loss Tables of a run.
	Result = core.Result
	// PhaseBreakdown is the per-phase time decomposition.
	PhaseBreakdown = core.PhaseBreakdown
	// LookupKind selects the ELT representation.
	LookupKind = core.LookupKind
)

// ELT representations (paper §III.B).
const (
	// LookupDirect is the paper's direct access table.
	LookupDirect = core.LookupDirect
	// LookupSorted is the sorted-array / binary-search alternative.
	LookupSorted = core.LookupSorted
	// LookupHash is the built-in map alternative.
	LookupHash = core.LookupHash
	// LookupCuckoo is the cuckoo-hash alternative cited by the paper.
	LookupCuckoo = core.LookupCuckoo
	// LookupCombined folds financial terms and the cross-ELT sum into
	// one table per layer at compile time — one lookup per occurrence,
	// bitwise identical to LookupDirect (an optimisation beyond the
	// paper; see the core package for its applicability limits).
	LookupCombined = core.LookupCombined
)

// NewLayer builds and validates a layer over ELTs.
func NewLayer(id uint32, name string, elts []*ELT, terms LayerTerms) (*Layer, error) {
	return layer.New(id, name, elts, terms)
}

// PassThroughLayerTerms returns layer terms that leave losses untouched.
func PassThroughLayerTerms() LayerTerms { return layer.PassThrough() }

// GeneratePortfolio builds a synthetic portfolio of layers and ELTs.
func GeneratePortfolio(cfg PortfolioConfig) (*Portfolio, error) {
	return layer.GeneratePortfolio(cfg)
}

// GenerateYET pre-simulates a Year Event Table.
func GenerateYET(src EventSource, cfg YETConfig) (*YET, error) { return yet.Generate(src, cfg) }

// UniformEvents returns an EventSource drawing uniformly from a catalog of
// n events (rate-weighted draws come from *Catalog itself).
func UniformEvents(n int) EventSource { return yet.UniformSource(n) }

// ReadYET deserialises a YET written with WriteYET.
func ReadYET(r io.Reader) (*YET, error) { return yet.Read(r) }

// WriteYET serialises a YET in the package's binary format.
func WriteYET(w io.Writer, t *YET) (int64, error) { return t.WriteTo(w) }

// NewEngine compiles a portfolio against a catalog size using the given
// ELT representation.
func NewEngine(p *Portfolio, catalogSize int, kind LookupKind) (*Engine, error) {
	return core.NewEngine(p, catalogSize, kind)
}

// Reference evaluates the portfolio with the literal transcription of the
// paper's pseudocode; it exists for verification and testing.
func Reference(p *Portfolio, y *YET, catalogSize int) (*Result, error) {
	return core.Reference(p, y, catalogSize)
}

// ---------------------------------------------------------------------------
// Streaming execution pipeline: sources, sinks, orchestrator.

// Pipeline types, re-exported. Engine.RunPipeline(src, sink, opt) runs
// any source against any sink; Engine.Run and Engine.RunStream are the
// materialising convenience wrappers over it.
type (
	// TrialSource supplies trial batches to the engine's pipeline
	// orchestrator, unifying loaded tables and serialised streams.
	TrialSource = core.TrialSource
	// TrialBatch is one unit of pipeline work.
	TrialBatch = core.Batch
	// Sink consumes per-trial (layer, trial, aggLoss, maxOcc) results
	// as the pipeline produces them.
	Sink = core.Sink
	// FullYLTSink materialises every result into a classic Result.
	FullYLTSink = core.FullYLT
	// MultiSink fans results out to several sinks in one pass.
	MultiSink = core.MultiSink
	// SummarySink accumulates per-layer YLT moments online in O(1)
	// memory per layer.
	SummarySink = metrics.SummarySink
	// EPSink estimates per-layer PML points at fixed return periods
	// online via mergeable compacting quantile sketches.
	EPSink = metrics.EPSink
)

// The metrics sinks satisfy the engine's Sink interface structurally.
var (
	_ Sink = (*SummarySink)(nil)
	_ Sink = (*EPSink)(nil)
	_ Sink = (*FullYLTSink)(nil)
	_ Sink = (MultiSink)(nil)
)

// NewTableSource adapts a loaded YET into a pipeline TrialSource.
func NewTableSource(y *YET) TrialSource { return core.NewTableSource(y) }

// NewStreamSource wraps a serialised YET (written by WriteYET) as a
// prefetching TrialSource that decodes trials in batches of batchTrials,
// overlapping decode with compute, without ever materialising the whole
// table.
func NewStreamSource(r io.Reader, batchTrials int) (TrialSource, error) {
	return core.NewStreamSource(r, batchTrials)
}

// NewFullYLTSink returns the materialising sink (classic Run output,
// bitwise identical).
func NewFullYLTSink() *FullYLTSink { return core.NewFullYLT() }

// NewSummarySink returns a streaming-moments sink: AAL, standard
// deviation, min/max per layer with O(1) memory per layer. Mean and
// StdDev match Summarise up to floating-point association (~1e-12
// relative); Min/Max/Trials are exact.
func NewSummarySink() *SummarySink { return metrics.NewSummarySink() }

// NewEPSink returns an online exceedance-curve sink estimating PML at
// the given return periods (nil or empty means StandardReturnPeriods)
// via mergeable compacting quantile sketches: deep-tail points (return
// period above trials/1024) are exact, the rest carry a guaranteed
// sub-percent rank-error bound. Sink states merge across shards (see
// metrics.EPSink.State/Merge), which is what the distributed
// coordinator uses to combine partial runs.
func NewEPSink(returnPeriods []float64) *EPSink { return metrics.NewEPSink(returnPeriods) }

// ---------------------------------------------------------------------------
// Scenario sweeps: K candidate structures, one fused pass.

// Sweep types, re-exported. A sweep prices K term/share variants of one
// portfolio in a single pass over the trials, paying the memory-bound
// event gather once; variant 0 with an empty delta is bitwise identical
// to a plain Engine.Run.
type (
	// SweepEngine evaluates a compiled variant set in one fused pass.
	SweepEngine = core.SweepEngine
	// SweepVariant describes one candidate structure as deltas on the
	// base portfolio (layer-term overrides + participation scale).
	SweepVariant = core.Variant
	// VariantSinks demultiplexes a sweep's result stream into one
	// ordinary Sink per variant.
	VariantSinks = core.VariantSinks
)

// NewSweepEngine compiles a portfolio and K variants for fused
// evaluation; SweepEngine.Run materialises one Result per variant.
func NewSweepEngine(p *Portfolio, catalogSize int, kind LookupKind, variants []SweepVariant) (*SweepEngine, error) {
	return core.NewSweepEngine(p, catalogSize, kind, variants)
}

// NewVariantSinks wraps one sink per sweep variant, in variant order,
// for SweepEngine.RunPipeline.
func NewVariantSinks(sinks ...Sink) *VariantSinks { return core.NewVariantSinks(sinks...) }

// ---------------------------------------------------------------------------
// Stage 3: metrics and pricing.

// Reporting types, re-exported.
type (
	// EPCurve is an exceedance-probability curve.
	EPCurve = metrics.EPCurve
	// EPPoint is one point of a printed EP curve.
	EPPoint = metrics.Point
	// YLTSummary holds YLT moments.
	YLTSummary = metrics.Summary
	// Quote is a priced layer.
	Quote = pricing.Quote
	// PricingConfig sets pricing loadings.
	PricingConfig = pricing.Config
)

// NewEPCurve builds an exceedance curve from per-trial losses (a YLT for
// AEP, per-trial maximum occurrence losses for OEP).
func NewEPCurve(losses []float64) (*EPCurve, error) { return metrics.NewEPCurve(losses) }

// Summarise computes YLT summary statistics.
func Summarise(ylt []float64) (YLTSummary, error) { return metrics.Summarise(ylt) }

// StandardReturnPeriods are the conventionally reported return periods.
func StandardReturnPeriods() []float64 { return metrics.StandardReturnPeriods }

// Price computes a premium quote from a layer's YLT.
func Price(ylt []float64, cfg PricingConfig) (Quote, error) { return pricing.Price(ylt, cfg) }

// ---------------------------------------------------------------------------
// Experiments.

// ExperimentConfig controls paper-figure regeneration.
type ExperimentConfig = harness.Config

// ExperimentTable is a rendered experiment result.
type ExperimentTable = harness.Table

// Experiments lists the reproducible paper figures.
func Experiments() []string { return harness.Names() }

// RunExperiment regenerates one paper figure as a table.
func RunExperiment(name string, cfg ExperimentConfig) (*ExperimentTable, error) {
	return harness.Run(name, cfg)
}

// ---------------------------------------------------------------------------
// Extension: secondary uncertainty (paper §IV).
//
// The paper's §IV sketches treating each event loss as a distribution
// rather than a mean. The engine supports it two ways, both reached
// through this section:
//
//   - Sampled execution: ELT records carry a lognormal sigma
//     (NewSampledELT, or sigma columns in specs and generated tables)
//     and the engine draws each (trial, event) occurrence loss inside
//     the columnar hot path when Options.Uncertainty asks for
//     UncertaintySampled. Draws are keyed on (seed, trial, event) by a
//     counter-based generator, so results are bitwise reproducible and
//     independent of worker count, sharding or fusion.
//   - Analytical machinery: the Severity type wraps discretised loss
//     distributions with convolution, Panjer compounding and layer
//     terms — the closed-form counterpart used to cross-validate the
//     sampler and to price single-severity models exactly.

// Distribution types, re-exported.
type (
	// LossDist is a discretised loss distribution on a uniform grid,
	// the representation behind Severity. Use Severity for new code;
	// LossDist remains for direct grid-level work.
	LossDist = lossdist.Dist

	// Uncertainty configures how an engine run treats severity
	// distributions (Options.Uncertainty).
	Uncertainty = core.Uncertainty
	// UncertaintyMode selects mean-only or sampled execution.
	UncertaintyMode = core.UncertaintyMode
	// JobUncertaintySpec is the job-request form of the uncertainty
	// block ({"mode": "sampled", "seed": N}).
	JobUncertaintySpec = spec.UncertaintySpec
)

// Uncertainty modes.
const (
	// UncertaintyMean prices every occurrence at its recorded mean
	// loss — the classic deterministic analysis and the zero value.
	UncertaintyMean = core.UncertaintyMean
	// UncertaintySampled draws per-(trial, event) occurrence losses
	// from each record's lognormal distribution.
	UncertaintySampled = core.UncertaintySampled
)

// NewSampledELT builds an ELT whose records carry lognormal severity
// sigmas: sigmas[i] belongs to records[i]. Records with sigma 0 always
// contribute their mean. The table runs unchanged in mean mode and
// samples under UncertaintySampled.
func NewSampledELT(id uint32, terms FinancialTerms, records []ELTRecord, sigmas []float64) (*ELT, error) {
	return elt.NewSampled(id, terms, records, sigmas)
}

// ReferenceSampled evaluates the portfolio with the naive transcription
// of §IV sampling — one fresh draw per occurrence, no batching. It is
// the oracle the vectorised sampled kernels are verified against and
// produces bitwise the same YLTs as a sampled Engine.Run with
// Uncertainty{Seed: seed}.
func ReferenceSampled(p *Portfolio, y *YET, catalogSize int, seed uint64) (*Result, error) {
	return core.ReferenceSampled(p, y, catalogSize, seed)
}

// Severity is a loss-severity distribution: the single entry point to
// the analytical §IV machinery. Construct one from a PMF, a CDF or
// lognormal parameters; derive new severities by convolution,
// compounding or layer terms; read moments and tail points directly.
// The zero Severity is invalid — always construct through the
// SeverityFrom*/LognormalSeverity constructors or a deriving method.
type Severity struct {
	d *lossdist.Dist
}

// SeverityFromPMF builds a severity from a PMF on a uniform grid of
// the given step (pmf[i] is the probability of loss i*step).
func SeverityFromPMF(step float64, pmf []float64) (Severity, error) {
	d, err := lossdist.New(step, pmf)
	return Severity{d}, err
}

// SeverityFromCDF discretises a continuous CDF onto a grid of the
// given step, truncated at maxLoss.
func SeverityFromCDF(step, maxLoss float64, cdf func(float64) float64) (Severity, error) {
	d, err := lossdist.Discretise(step, maxLoss, cdf)
	return Severity{d}, err
}

// LognormalSeverity discretises the lognormal severity the sampled
// engine draws from — mean expected loss and shape sigma, the same
// parameterisation as NewSampledELT's sigma column — onto a grid of
// the given step truncated at maxLoss. It is the bridge between the
// Monte Carlo and analytical halves of §IV: the Panjer compound of
// this severity is the closed-form annual-loss distribution a sampled
// run estimates.
func LognormalSeverity(mean, sigma, step, maxLoss float64) (Severity, error) {
	mu := elt.LogNormalMu(mean, sigma)
	return SeverityFromCDF(step, maxLoss, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 0.5 * math.Erfc(-(math.Log(x)-mu)/(sigma*math.Sqrt2))
	})
}

// Dist exposes the underlying grid distribution for direct work.
func (s Severity) Dist() *LossDist { return s.d }

// Convolve returns the severity of the sum of independent losses
// (FFT-accelerated for large supports).
func (s Severity) Convolve(others ...Severity) (Severity, error) {
	ds := make([]*lossdist.Dist, 0, len(others)+1)
	ds = append(ds, s.d)
	for _, o := range others {
		ds = append(ds, o.d)
	}
	d, err := lossdist.ConvolveN(ds...)
	return Severity{d}, err
}

// Compound returns the annual aggregate loss distribution for
// Poisson(lambda) occurrences of this severity (Panjer recursion) —
// the closed-form counterpart to a sampled engine run for a single
// severity model. maxBuckets caps the result's support.
func (s Severity) Compound(lambda float64, maxBuckets int) (Severity, error) {
	d, err := lossdist.CompoundPoisson(lambda, s.d, maxBuckets)
	return Severity{d}, err
}

// ApplyLayerTerms pushes the severity through
// min(max(X-retention, 0), limit).
func (s Severity) ApplyLayerTerms(retention, limit float64) (Severity, error) {
	d, err := lossdist.ApplyLayerTerms(s.d, retention, limit)
	return Severity{d}, err
}

// Mean returns the severity's expected loss.
func (s Severity) Mean() float64 { return s.d.Mean() }

// Variance returns the severity's loss variance.
func (s Severity) Variance() float64 { return s.d.Variance() }

// Quantile returns the smallest grid loss with CDF >= p.
func (s Severity) Quantile(p float64) float64 { return s.d.Quantile(p) }

// ExceedanceProb returns P(X > x).
func (s Severity) ExceedanceProb(x float64) float64 { return s.d.ExceedanceProb(x) }

// NewLossDist builds a distribution from a PMF on a uniform grid.
//
// Deprecated: use SeverityFromPMF; this remains as a thin wrapper for
// existing callers.
func NewLossDist(step float64, pmf []float64) (*LossDist, error) { return lossdist.New(step, pmf) }

// DiscretiseLoss puts a continuous CDF onto the grid.
//
// Deprecated: use SeverityFromCDF; this remains as a thin wrapper for
// existing callers.
func DiscretiseLoss(step, maxLoss float64, cdf func(float64) float64) (*LossDist, error) {
	return lossdist.Discretise(step, maxLoss, cdf)
}

// ConvolveLosses returns the distribution of the sum of independent
// losses (FFT-accelerated for large supports).
//
// Deprecated: use Severity.Convolve; this remains as a thin wrapper
// for existing callers.
func ConvolveLosses(ds ...*LossDist) (*LossDist, error) { return lossdist.ConvolveN(ds...) }

// CompoundAnnualLoss returns the analytical distribution of the annual
// aggregate loss for Poisson(lambda) occurrences with the given severity
// distribution (Panjer recursion) — the closed-form counterpart to the
// Monte Carlo engine for a single severity model.
//
// Deprecated: use Severity.Compound; this remains as a thin wrapper
// for existing callers.
func CompoundAnnualLoss(lambda float64, severity *LossDist, maxBuckets int) (*LossDist, error) {
	return lossdist.CompoundPoisson(lambda, severity, maxBuckets)
}

// ApplyLayerTermsToDist pushes a loss distribution through
// min(max(X-retention, 0), limit).
//
// Deprecated: use Severity.ApplyLayerTerms; this remains as a thin
// wrapper for existing callers.
func ApplyLayerTermsToDist(d *LossDist, retention, limit float64) (*LossDist, error) {
	return lossdist.ApplyLayerTerms(d, retention, limit)
}

// ---------------------------------------------------------------------------
// Enterprise roll-up and advanced pricing.

// ReinstatableQuote is a Cat XL quote with reinstatement provisions.
type ReinstatableQuote = pricing.ReinstatableQuote

// PriceReinstatable prices a Cat XL layer with reinstatement provisions
// (reference [18] of the paper): reinstatement premium income, pro rata
// to the limit consumed, offsets the upfront technical premium.
func PriceReinstatable(ylt []float64, reinstatements int, reinstRate float64, cfg PricingConfig) (ReinstatableQuote, error) {
	return pricing.PriceReinstatable(ylt, reinstatements, reinstRate, cfg)
}

// AllocateTVaR attributes the group's tail capital at confidence q back
// to layers by co-TVaR; allocations sum to the group TVaR.
func AllocateTVaR(ylts [][]float64, q float64) ([]float64, error) {
	return metrics.AllocateTVaR(ylts, q)
}

// DiversificationBenefit reports the group's tail-capital saving versus
// standalone TVaRs, in [0, 1).
func DiversificationBenefit(ylts [][]float64, q float64) (float64, error) {
	return metrics.DiversificationBenefit(ylts, q)
}

// ParsePortfolioSpec loads a JSON portfolio specification (see
// internal/spec for the schema) and returns the portfolio plus the
// catalog size to compile against.
func ParsePortfolioSpec(r io.Reader) (*Portfolio, int, error) { return spec.Parse(r) }

// ReportConfig controls rendered analysis reports.
type ReportConfig = report.Config

// WriteReport renders a markdown analysis report (per-layer metrics and
// quotes, group roll-up, capital allocation) for an engine result.
func WriteReport(w io.Writer, p *Portfolio, res *Result, cfg ReportConfig) error {
	return report.Write(w, p, res, cfg)
}

// SpecOpener resolves "file" ELT references in a portfolio spec.
type SpecOpener = spec.Opener

// ParsePortfolioSpecFiles is ParsePortfolioSpec with an opener for
// resolving "file" ELT references (binary tables written by WriteELT).
func ParsePortfolioSpecFiles(r io.Reader, open SpecOpener) (*Portfolio, int, error) {
	return spec.ParseFiles(r, open)
}

// WriteELT serialises an Event Loss Table in the binary format consumed
// by spec "file" references and ReadELT.
func WriteELT(w io.Writer, t *ELT) (int64, error) { return t.WriteTo(w) }

// ReadELT deserialises a binary Event Loss Table.
func ReadELT(r io.Reader) (*ELT, error) { return elt.ReadTable(r) }

// ---------------------------------------------------------------------------
// Analysis service (ared) job specifications.

// Job-request types, re-exported for clients of the ared HTTP service
// (cmd/ared, docs/api.md) and for programs that want to replay a job
// through the library directly.
type (
	// JobSpec is one analysis request: an inline portfolio spec, a YET
	// spec, and the metrics wanted back — the body of POST /v1/jobs.
	JobSpec = spec.Job
	// JobYETSpec is the job's Year Event Table description; together
	// with the portfolio's catalog size it is the table's cache
	// identity on the server.
	JobYETSpec = spec.YETSpec
	// JobMetricsSpec selects the metrics a job reports.
	JobMetricsSpec = spec.MetricsSpec
	// PortfolioSpec is the JSON document form of a portfolio (the
	// schema ParsePortfolioSpec reads, and a job's "portfolio" field).
	PortfolioSpec = spec.File
)

// ParseJobSpec decodes and validates one ared job request; unknown
// fields and structurally invalid specs are rejected with the same
// errors the service's 400 responses carry.
func ParseJobSpec(r io.Reader) (*JobSpec, error) { return spec.ParseJob(r) }
