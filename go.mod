module github.com/ralab/are

go 1.22
